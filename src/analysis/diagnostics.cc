#include "analysis/diagnostics.h"

#include <algorithm>
#include <numeric>

namespace limcap::analysis {

namespace {

/// Escapes `text` for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Plural(std::size_t n, const char* noun) {
  std::string out = std::to_string(n) + " " + noun;
  if (n != 1) out += "s";
  return out;
}

}  // namespace

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string CodeName(Code code) {
  int number = static_cast<int>(code);
  std::string digits = std::to_string(number);
  return "LC" + std::string(3 - digits.size(), '0') + digits;
}

Severity DefaultSeverity(Code code) {
  switch (code) {
    case Code::kArityClash:
    case Code::kUnsafeHeadVariable:
    case Code::kNonGroundFact:
    case Code::kViewArityMismatch:
    case Code::kUnbindableViewAtom:
      return Severity::kError;
    // Never-fire findings are warnings, not errors: a *full* Π(Q, V)
    // legitimately contains dead rules (removing them is exactly
    // Section 6's optimization), so linting an unoptimized program must
    // not fail. LC020 stays an error because an unbindable view atom is
    // a capability-contract violation no evaluation order can mend.
    case Code::kRuleNeverFires:
    case Code::kUndeclaredPredicate:
    case Code::kGoalUnreachableRule:
    case Code::kUnproduciblePredicate:
    case Code::kUnfetchableView:
    // Binding-flow channel verdicts are warnings for the same reason:
    // full programs legitimately carry channels the query never feeds;
    // dropping them is the kPrune gate's optimization, not a bug.
    case Code::kStaticallyIrrelevantChannel:
    case Code::kUnreachableChannel:
      return Severity::kWarning;
    case Code::kSingletonVariable:
    case Code::kRecursiveProgram:
    case Code::kStaticBounds:
      return Severity::kNote;
  }
  return Severity::kError;
}

void DiagnosticBag::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

Diagnostic& DiagnosticBag::Report(Code code, std::string message,
                                  Location location) {
  Diagnostic diagnostic;
  diagnostic.code = code;
  diagnostic.severity = DefaultSeverity(code);
  diagnostic.message = std::move(message);
  diagnostic.location = std::move(location);
  diagnostics_.push_back(std::move(diagnostic));
  return diagnostics_.back();
}

std::size_t DiagnosticBag::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

void DiagnosticBag::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.rule != b.location.rule) {
                       return a.location.rule < b.location.rule;
                     }
                     if (a.location.atom != b.location.atom) {
                       return a.location.atom < b.location.atom;
                     }
                     return static_cast<int>(a.code) <
                            static_cast<int>(b.code);
                   });
}

std::string DiagnosticBag::RenderText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += SeverityToString(d.severity);
    out += "[" + CodeName(d.code) + "] " + d.message + "\n";
    const Location& loc = d.location;
    if (loc.rule != Location::kNone || !loc.context.empty()) {
      out += "  --> ";
      if (loc.rule != Location::kNone) {
        out += "rule " + std::to_string(loc.rule);
        if (loc.atom != Location::kNone) {
          out += ", body atom " + std::to_string(loc.atom);
        }
        if (loc.line > 0) out += " (line " + std::to_string(loc.line) + ")";
        if (!loc.context.empty()) out += ": ";
      }
      out += loc.context + "\n";
    }
    for (const std::string& note : d.notes) {
      out += "  note: " + note + "\n";
    }
  }
  out += Plural(errors(), "error") + ", " + Plural(warnings(), "warning") +
         ", " + Plural(notes(), "note") + "\n";
  return out;
}

std::string DiagnosticBag::RenderJson() const {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out += ",";
    first = false;
    out += "{\"code\":\"" + CodeName(d.code) + "\"";
    out += ",\"severity\":\"" + std::string(SeverityToString(d.severity)) +
           "\"";
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"";
    out += ",\"rule\":" + std::to_string(d.location.rule);
    out += ",\"atom\":" + std::to_string(d.location.atom);
    out += ",\"line\":" + std::to_string(d.location.line);
    out += ",\"column\":" + std::to_string(d.location.column);
    out += ",\"context\":\"" + JsonEscape(d.location.context) + "\"";
    out += ",\"notes\":[";
    for (std::size_t i = 0; i < d.notes.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(d.notes[i]) + "\"";
    }
    out += "]}";
  }
  out += "],\"errors\":" + std::to_string(errors());
  out += ",\"warnings\":" + std::to_string(warnings());
  out += ",\"notes\":" + std::to_string(notes());
  out += "}";
  return out;
}

Status DiagnosticBag::ToStatus() const {
  const std::size_t n = errors();
  if (n == 0) return Status::OK();
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    std::string message = CodeName(d.code) + ": " + d.message;
    if (n > 1) {
      message += " (and " + std::to_string(n - 1) + " more error" +
                 (n > 2 ? "s" : "") + ")";
    }
    return Status::InvalidArgument(std::move(message));
  }
  return Status::OK();
}

}  // namespace limcap::analysis
