#include "analysis/lint.h"

#include <set>
#include <utility>
#include <vector>

#include "analysis/executability.h"
#include "capability/catalog_fingerprint.h"
#include "capability/catalog_text.h"
#include "common/string_util.h"
#include "datalog/parser.h"
#include "planner/query_parser.h"

namespace limcap::analysis {

namespace {

using capability::AttributeSet;
using capability::SourceView;

/// Catalog-only mode: cold-start reachability. No program to analyze —
/// report, per unreachable view, why no sequence of source queries can
/// ever touch it (a standing LC023, independent of any query).
AnalysisResult LintCatalogOnly(const std::vector<SourceView>& views,
                               const planner::DomainMap& domains) {
  AnalysisResult result;
  const std::set<std::string> reachable = ReachableViews(views, domains);
  for (const SourceView& view : views) {
    if (reachable.count(view.name()) > 0) continue;
    Diagnostic& d = result.diagnostics.Report(
        Code::kUnfetchableView,
        "source view '" + view.name() +
            "' is unreachable from a cold start: every template requires "
            "bound attributes that no sequence of source queries can "
            "supply (a query must seed them through its inputs)");
    d.location.context = view.ToString();
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      const AttributeSet bound = view.BoundAttributes(t);
      d.notes.push_back(
          "template '" + view.templates()[t].ToString() + "' requires {" +
          Join(std::vector<std::string>(bound.begin(), bound.end()), ", ") +
          "} bound");
    }
  }
  result.diagnostics.Sort();
  return result;
}

}  // namespace

Result<LintReport> Lint(const LintRequest& request) {
  if (request.has_program && request.has_query) {
    return Status::InvalidArgument(
        "lint takes a program or a query, not both");
  }

  LIMCAP_ASSIGN_OR_RETURN(capability::ParsedCatalog parsed,
                          capability::ParseCatalog(request.catalog_text));

  LintReport report;
  AnalysisOptions options = request.options;
  if (request.deep) options.check_binding_flow = true;
  if (request.has_program) {
    datalog::ProgramSourceMap source_map;
    LIMCAP_ASSIGN_OR_RETURN(
        report.program,
        datalog::ParseProgram(request.program_text, &source_map));
    report.analysis = AnalyzeProgram(report.program, parsed.views,
                                     options, &source_map);
  } else if (request.has_query) {
    LIMCAP_ASSIGN_OR_RETURN(planner::Query query,
                            planner::ParseQuery(request.query_text));
    LIMCAP_RETURN_NOT_OK(
        query.Validate(parsed.catalog, request.options.domains));
    // The *full* Π(Q, V): never-fire warnings show exactly what the
    // Section 6 optimizer would prune; errors are capability-contract
    // violations no optimizer can mend.
    LIMCAP_ASSIGN_OR_RETURN(
        report.program,
        planner::BuildProgram(query, parsed.views, request.options.domains,
                              request.builder));
    report.analysis =
        AnalyzeProgram(report.program, parsed.views, options);
  } else {
    report.analysis = LintCatalogOnly(parsed.views, request.options.domains);
  }

  // Report the catalog's capability fingerprint: the identity plans are
  // cached (and diagnostics are valid) under — lets an operator confirm
  // two lint runs saw the same capability surface.
  const std::string fingerprint =
      capability::FingerprintToString(parsed.catalog.fingerprint());
  if (request.json) {
    // Splice the fingerprint (and, under --deep, the binding-flow
    // certificate dump) in as leading fields of the rendered object:
    // {"catalog_fingerprint":"0x...","binding_flow":{...},
    //  "diagnostics":...}.
    std::string head = "{\"catalog_fingerprint\":\"" + fingerprint + "\",";
    if (request.deep && report.analysis.binding_flow_ran) {
      head += "\"binding_flow\":" +
              RenderBindingFlowJson(report.analysis.binding_flow) + ",";
    }
    std::string rendered = report.analysis.diagnostics.RenderJson();
    report.rendered = head + rendered.substr(1);
  } else {
    report.rendered = report.analysis.diagnostics.RenderText();
    if (request.deep && report.analysis.binding_flow_ran) {
      report.rendered += "== binding flow (deep) ==\n" +
                         RenderBindingFlowText(report.analysis.binding_flow);
    }
    report.rendered += "catalog fingerprint: " + fingerprint + "\n";
  }
  return report;
}

}  // namespace limcap::analysis
