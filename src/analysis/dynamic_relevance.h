#ifndef LIMCAP_ANALYSIS_DYNAMIC_RELEVANCE_H_
#define LIMCAP_ANALYSIS_DYNAMIC_RELEVANCE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/ast.h"
#include "datalog/fact_store.h"

namespace limcap::analysis {

/// One fetch channel — a (view, template) pair — as the dynamic
/// relevance checker sees it. The evaluator builds one per catalog
/// channel the program mentions (statically pruned channels included,
/// flagged unfetchable: their alpha rules still exist in the program, so
/// the taint analysis must know their binding shape).
struct DynamicChannelInfo {
  std::string view;
  std::size_t template_index = 0;
  /// The view's full schema attribute names, in schema order.
  std::vector<std::string> attributes;
  /// The template's bound positions (indexes into `attributes`).
  std::vector<uint32_t> bound_positions;
  /// DomainOf(attributes[i]) for EVERY schema position, bound or free.
  std::vector<std::string> domains;
  /// False for statically pruned channels: the evaluator never fetches
  /// through them, so new domain values cannot reach sources this way.
  bool fetchable = true;
  /// This round, the channel still has formable not-yet-asked queries
  /// (computed from the full pre-truncation frontier). Set per round via
  /// DynamicRelevanceChecker::BeginRound.
  bool has_pending = false;
};

/// A machine-checkable certificate that skipping one pending source
/// query — channel (view, template) at the given bound-value combination
/// — cannot change the goal predicate's final extent. Two obligations:
///
///   * level-one blocking: for EVERY occurrence of the view's
///     alpha-predicate in a rule body, the facts the skipped fetch would
///     have contributed can never satisfy that body — either the
///     occurrence's own constants contradict the combination, or a
///     frozen co-atom (a predicate no pending fetch can ever grow, whose
///     extent is therefore final) holds no fact matching the values the
///     combination forces on it;
///   * goal isolation: closing the withheld domain values forward
///     through fetch channels and rules (the guarded taint fixpoint)
///     never reaches the goal.
///
/// VerifySkipCertificate re-checks both against the program and the
/// store, independently of the checker's internals.
struct SkipCertificate {
  std::string view;
  std::size_t template_index = 0;
  /// The skipped query's bound values, decoded, in bound-position order.
  std::vector<Value> combo;

  /// Why one alpha-predicate occurrence cannot consume the withheld
  /// facts.
  struct BlockingEvidence {
    /// Rule and body-atom position of the occurrence.
    std::size_t rule_index = 0;
    std::size_t atom_index = 0;
    /// The occurrence itself contradicts the combination (a constant at
    /// a bound position differs, or one variable is forced to two
    /// values); no blocking atom is needed.
    bool vacuous = false;
    /// !vacuous: the frozen co-atom with no matching fact.
    std::size_t blocking_atom_index = 0;
    std::string blocking_predicate;
  };
  /// One entry per occurrence of the alpha predicate in any rule body.
  std::vector<BlockingEvidence> evidence;
  /// Frozen predicates the evidence relies on, sorted.
  std::vector<std::string> frozen;
  /// Domain predicates whose future growth the skip withholds (the taint
  /// fixpoint's final domain set), sorted.
  std::vector<std::string> tainted_domains;

  /// "skip v[0](a=1, b=2): 3 occurrences blocked; tainted: dom_c".
  std::string ToString() const;
};

struct DynamicRelevanceOptions {
  /// The goal predicate; `<goal>$...` tagged heads count as goals too.
  std::string goal_predicate = "ans";
  /// The alpha-predicate of view v is named v + alpha_suffix.
  std::string alpha_suffix = "^";
};

/// Decides, at fetch-dispatch time, whether a pending source query is
/// still relevant given the bindings actually materialized so far — the
/// runtime companion of the static binding-flow analysis. Construct once
/// per execution over the program the evaluator runs and the store it
/// fills; call BeginRound with each round's pending flags (which refresh
/// the frozen-predicate fixpoint), then TrySkip per frontier entry.
///
/// Soundness rests on the builder's attribute-global variable naming
/// (one variable name ⇔ one attribute across the whole program, which
/// DecomposeWideRules preserves): a value appearing in an untainted
/// atom's column implies the same value was cleanly derived into that
/// attribute's domain. The checker REFUSES (returns nullopt) on any rule
/// shape outside that family, so on arbitrary programs it degrades to
/// never skipping — in line with relevance of accesses being undecidable
/// in general. The adaptive property suite is the wall: skips must never
/// change answers on the paper examples, random topologies, or
/// fault-injected runs.
class DynamicRelevanceChecker {
 public:
  /// `program` and `store` are borrowed and must outlive the checker.
  DynamicRelevanceChecker(const datalog::Program* program,
                          std::vector<DynamicChannelInfo> channels,
                          const datalog::FactStore* store,
                          DynamicRelevanceOptions options = {});

  /// Starts a round: `has_pending[i]` says channel i still has formable
  /// not-yet-asked queries in the FULL frontier (before any truncation).
  /// Recomputes the frozen fixpoint; must be called before TrySkip.
  void BeginRound(const std::vector<bool>& has_pending);

  /// Tries to certify that the query (channels[channel_index], combo) is
  /// skippable. nullopt = cannot certify, the fetch must go out.
  std::optional<SkipCertificate> TrySkip(std::size_t channel_index,
                                         const std::vector<ValueId>& combo);

  /// Predicates no pending fetch can grow this round (extents final).
  const std::set<std::string>& frozen() const { return frozen_; }

  const std::vector<DynamicChannelInfo>& channels() const {
    return channels_;
  }

 private:
  /// True when no rule/channel path can ever grow `predicate` again.
  bool IsFrozen(const std::string& predicate) const {
    return frozen_.count(predicate) > 0;
  }
  /// Does the frozen `predicate` hold a fact with `value_at[i]` at
  /// column `columns[i]` for all i?
  bool HasMatchingFact(const std::string& predicate,
                       const std::vector<uint32_t>& columns,
                       const std::vector<ValueId>& values) const;

  const datalog::Program* program_;
  std::vector<DynamicChannelInfo> channels_;
  const datalog::FactStore* store_;
  DynamicRelevanceOptions options_;
  std::set<std::string> frozen_;
  bool round_begun_ = false;

  friend Status VerifySkipCertificate(const DynamicRelevanceChecker& checker,
                                      const SkipCertificate& certificate);
};

/// Independently re-checks `certificate` against the checker's program,
/// channels, store and CURRENT round state: the evidence must cover
/// every alpha-occurrence, cite only genuinely frozen predicates with
/// genuinely empty matching extents, and the recomputed taint fixpoint
/// must leave the goal untouched. OK when the certificate discharges its
/// obligation. (Frozen-ness and frozen extents are monotone across
/// rounds, so a certificate issued in an earlier round still verifies
/// later.)
Status VerifySkipCertificate(const DynamicRelevanceChecker& checker,
                             const SkipCertificate& certificate);

/// Deterministic one-line-per-certificate dump for explain output.
std::string RenderSkipCertificates(
    const std::vector<SkipCertificate>& certificates);

}  // namespace limcap::analysis

#endif  // LIMCAP_ANALYSIS_DYNAMIC_RELEVANCE_H_
