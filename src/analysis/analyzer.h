#ifndef LIMCAP_ANALYSIS_ANALYZER_H_
#define LIMCAP_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/binding_flow.h"
#include "analysis/diagnostics.h"
#include "analysis/executability.h"
#include "capability/source_view.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "planner/domain_map.h"

namespace limcap::analysis {

/// Which passes AnalyzeProgram runs and how.
struct AnalysisOptions {
  /// The goal predicate for reachability (LC006). Predicates named
  /// `<goal>$...` (the builder's tagged per-connection goals) count as
  /// goals too.
  std::string goal_predicate = "ans";
  /// The attribute -> domain-predicate mapping the program was built
  /// with; the executability analysis mirrors the evaluator's use of it.
  planner::DomainMap domains;
  ExecutabilityOptions executability;
  /// Pass toggles.
  bool check_executability = true;
  bool check_goal_reachability = true;
  bool note_singleton_variables = true;
  bool note_recursion = true;
  /// The binding-flow pass (LC030-LC032) is opt-in: `limcap_lint --deep`
  /// and the execution gate enable it; plain lint output stays stable.
  bool check_binding_flow = false;
};

/// Everything the analyzer found.
struct AnalysisResult {
  /// All diagnostics, sorted by (rule, atom, code).
  DiagnosticBag diagnostics;
  /// Per-rule executability verdicts (empty when the pass was disabled).
  ExecutabilityResult executability;
  bool executability_ran = false;
  /// Binding-flow channel verdicts (empty when the pass was disabled).
  BindingFlowResult binding_flow;
  bool binding_flow_ran = false;

  bool ok() const { return !diagnostics.has_errors(); }
};

/// The static program verifier: checks a (typically planner-produced)
/// Datalog program against the source catalog *before execution*.
/// Runs, in order:
///
///   * safety: arity consistency (LC001), range restriction (LC002),
///     ground facts (LC003) — shared with datalog::CheckSafety;
///   * declaration hygiene: undeclared body predicates (LC004),
///     singleton variables (LC005);
///   * reachability: rules the goal cannot reach (LC006, cross-checking
///     Section 6's RemoveUselessRules) and a recursion note (LC007);
///   * catalog conformance: view-atom arity (LC010);
///   * adorned executability (LC020-LC023): see
///     analysis/executability.h.
///
/// `views` is the source catalog (only views the program mentions
/// matter); `source_map` (optional) makes diagnostics point at source
/// lines.
AnalysisResult AnalyzeProgram(const datalog::Program& program,
                              const std::vector<capability::SourceView>& views,
                              const AnalysisOptions& options = {},
                              const datalog::ProgramSourceMap* source_map =
                                  nullptr);

}  // namespace limcap::analysis

#endif  // LIMCAP_ANALYSIS_ANALYZER_H_
