#ifndef LIMCAP_ANALYSIS_BINDING_FLOW_H_
#define LIMCAP_ANALYSIS_BINDING_FLOW_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "capability/source_view.h"
#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "planner/domain_map.h"

namespace limcap::analysis {

/// The abstract adornment lattice, per predicate (and, through a
/// template's domain predicates, per fetch-channel position):
///
///   kBottom ⊑ kConstant ⊑ kVariable
///
/// kBottom — the predicate can never hold a fact; kConstant — every
/// fact it can hold is one of finitely many ground tuples traceable to
/// the query's input constants; kVariable — facts may carry values only
/// known at runtime (source-returned). The forward pass joins upward
/// only, so the fixpoint is a sound over-approximation of every
/// source-driven evaluation (serial, parallel-eval, concurrent-fetch —
/// they all derive the same fact set).
enum class AbstractBinding { kBottom = 0, kConstant = 1, kVariable = 2 };

/// "bottom" / "constant" / "variable".
const char* AbstractBindingToString(AbstractBinding binding);

struct BindingFlowOptions {
  /// The goal predicate; `<goal>$...` tagged heads count as goals too.
  std::string goal_predicate = "ans";
};

/// One link of a relevance witness: how `predicate` feeds the next
/// step's predicate on the way to the goal.
struct WitnessStep {
  enum class Link {
    /// `predicate` occurs in the body of rule `rule_index`, whose head
    /// is the next step's predicate (and the rule abstractly fires).
    kRule,
    /// `predicate` is the domain predicate of a bound position of the
    /// reachable channel `via_view`[`via_template`]; the next step is
    /// `via_view` (the fetch the domain drives).
    kChannel,
    /// `predicate` is the goal (terminal step).
    kGoal,
  };
  std::string predicate;
  Link link = Link::kGoal;
  std::size_t rule_index = 0;
  std::string via_view;
  std::size_t via_template = 0;
};

/// A machine-checkable certificate for a channel verdict; see
/// VerifyCertificate for the exact obligations each kind discharges.
struct PruningCertificate {
  enum class Kind {
    kNone,
    /// Relevance witness: a feed chain channel-view → ... → goal.
    kWitness,
    /// Irrelevance refutation: `closed_set` is backward-closed from the
    /// goals under firing rules and reachable channels, yet excludes
    /// the channel's view — nothing the channel returns can feed the
    /// goal.
    kIrrelevance,
    /// Unreachability refutation: `closed_set` is forward-closed from
    /// the ground facts, yet `missing_domain` (a bound domain of the
    /// channel) is outside it — no query can ever be formed.
    kUnreachability,
  };
  Kind kind = Kind::kNone;
  /// kWitness: the chain, channel view first, goal last.
  std::vector<WitnessStep> steps;
  /// kIrrelevance: the closed needed set; kUnreachability: the closed
  /// populated set. Sorted.
  std::vector<std::string> closed_set;
  /// kUnreachability: the never-populated bound domain predicate.
  std::string missing_domain;
};

/// The verdict for one fetch channel — a (view, template) pair, the
/// unit the source-driven evaluator schedules queries by.
struct ChannelVerdict {
  /// frontier_depth when the channel is unreachable.
  static constexpr std::size_t kNoDepth = static_cast<std::size_t>(-1);

  std::string view;
  std::size_t template_index = 0;
  /// The template's adornment text, e.g. "bf".
  std::string adornment;
  /// The evaluator can form at least one query for this channel.
  bool reachable = false;
  /// Reachable AND the view's tuples can feed the goal. `!relevant`
  /// channels are the statically prunable accesses.
  bool relevant = false;
  /// Reachable binding pattern, one char per schema position: 'c' the
  /// position's feeding domain is constant-only, 'v' runtime values
  /// reach it, 'f' free. Empty when unreachable.
  std::string reachable_pattern;
  /// First fetch wave (0-based) in which a query can be formed.
  std::size_t frontier_depth = kNoDepth;
  /// Upper bound on distinct source queries through this channel, when
  /// every bound domain is constant-only.
  bool fetch_bound_finite = false;
  std::uint64_t fetch_bound = 0;
  PruningCertificate certificate;
};

/// Static per-source bounds (the LC032 note), aggregated over a view's
/// reachable channels.
struct SourceBounds {
  std::string view;
  std::size_t frontier_depth = 0;
  bool fetch_bound_finite = false;
  std::uint64_t fetch_bound = 0;
};

/// The binding-flow fixpoint result.
struct BindingFlowResult {
  /// One verdict per channel of every mentioned catalog view, in
  /// catalog × template order.
  std::vector<ChannelVerdict> channels;
  /// The backward-closed needed set: predicates whose facts can feed
  /// the goal (goals included).
  std::set<std::string> needed_predicates;
  /// The forward fixpoint per predicate (populated predicates only).
  std::map<std::string, AbstractBinding> predicate_values;
  /// Per-source bounds for views with at least one reachable channel.
  std::vector<SourceBounds> sources;

  /// The (view, template_index) channels safe to drop before
  /// scheduling: every channel with `relevant == false`. The shape
  /// matches ExecOptions::pruned_channels.
  std::vector<std::pair<std::string, std::size_t>> PrunedChannels() const;
};

/// The binding-flow abstract interpretation (this PR's tentpole): a
/// two-pass fixpoint dataflow over the adorned program and the
/// catalog's fetch channels.
///
/// Forward pass (reachability): starting from the program's ground
/// facts (the query's input bindings), alternate rule closure with
/// channel activation — a channel activates in the first wave all its
/// bound-position domain predicates are populated, mirroring the
/// evaluator's fetch/eval alternation — joining each predicate up the
/// AbstractBinding lattice. Yields per-channel reachable patterns,
/// frontier depths and fetch-count bounds.
///
/// Backward pass (relevance): close the goal predicates backward under
/// abstractly-firing rules (head needed ⇒ body needed) and reachable
/// channels (view needed ⇒ its active channels' bound domains needed).
/// A reachable channel of a view outside the needed set can never feed
/// the goal: dropping it is answer-preserving, because any fact chain
/// from the channel to the goal would have put its view inside the
/// closure. This is strictly stronger than `can_fire` (LC021), which
/// only asks whether a rule can derive *some* fact, not whether that
/// fact matters.
///
/// Every verdict carries a certificate; VerifyCertificate re-checks it
/// independently of this function's internals.
BindingFlowResult AnalyzeBindingFlow(
    const datalog::Program& program,
    const std::vector<capability::SourceView>& views,
    const planner::DomainMap& domains, const BindingFlowOptions& options = {});

/// Appends LC030 (statically irrelevant channel), LC031 (unreachable
/// channel) and LC032 (per-source static bounds) diagnostics to `bag`.
void AppendBindingFlowDiagnostics(const datalog::Program& program,
                                  const BindingFlowResult& result,
                                  const datalog::ProgramSourceMap* source_map,
                                  DiagnosticBag* bag);

/// Independently checks `verdict.certificate` against the program and
/// catalog: witness chains must link existing firing rules / reachable
/// channels and terminate at a goal; refutation sets must actually be
/// closed and exclude what they claim to exclude. Returns OK when the
/// certificate discharges its obligation, an error describing the
/// first violated condition otherwise.
Status VerifyCertificate(const datalog::Program& program,
                         const std::vector<capability::SourceView>& views,
                         const planner::DomainMap& domains,
                         const BindingFlowOptions& options,
                         const ChannelVerdict& verdict);

/// Deterministic human-readable dump (the `limcap_lint --deep` text
/// section): one line per channel with its certificate, then the
/// per-source bounds.
std::string RenderBindingFlowText(const BindingFlowResult& result);

/// Machine-readable dump:
/// {"channels":[{"view":...,"template":...,"certificate":{...}},...],
///  "sources":[...],"needed":[...]}
std::string RenderBindingFlowJson(const BindingFlowResult& result);

}  // namespace limcap::analysis

#endif  // LIMCAP_ANALYSIS_BINDING_FLOW_H_
