#ifndef LIMCAP_ANALYSIS_LINT_H_
#define LIMCAP_ANALYSIS_LINT_H_

#include <string>

#include "analysis/analyzer.h"
#include "common/result.h"
#include "datalog/ast.h"
#include "planner/program_builder.h"

namespace limcap::analysis {

/// One lint run over textual inputs — the library behind `limcap_lint`,
/// shared with the golden-file tests. Exactly one of three modes:
///
///   * catalog only: cold-start reachability over the catalog's views —
///     which sources could ever be queried with no query inputs at all;
///   * catalog + program: analyze a hand-written Datalog program against
///     the catalog (parser source map gives diagnostics line numbers);
///   * catalog + query: build the full Π(Q, V) for the connection query
///     and analyze it (the pre-optimization program — never-fire
///     findings show what Section 6 would prune).
struct LintRequest {
  /// Catalog text for capability::ParseCatalog. Required.
  std::string catalog_text;
  /// Datalog program text; mutually exclusive with `query_text`.
  std::string program_text;
  bool has_program = false;
  /// Connection-query text for planner::ParseQuery.
  std::string query_text;
  bool has_query = false;
  /// Analyzer knobs (goal predicate, pass toggles).
  AnalysisOptions options;
  /// Builder knobs for query mode.
  planner::BuilderOptions builder;
  /// Render machine-readable JSON instead of text.
  bool json = false;
  /// `--deep`: also run the binding-flow pass (LC030-LC032) and append
  /// the per-channel certificate dump to the rendered report. No effect
  /// in catalog-only mode (binding flow needs a program).
  bool deep = false;
};

struct LintReport {
  /// Diagnostics plus executability verdicts.
  AnalysisResult analysis;
  /// The analyzed program (empty in catalog-only mode).
  datalog::Program program;
  /// The report, rendered per LintRequest::json.
  std::string rendered;

  bool ok() const { return analysis.ok(); }
};

/// Runs one lint. Returns an error Status only when the *inputs* are
/// unusable (unparsable catalog/program/query, both program and query
/// given, invalid query); findings about a well-formed program are
/// diagnostics in the report, never a Status.
Result<LintReport> Lint(const LintRequest& request);

}  // namespace limcap::analysis

#endif  // LIMCAP_ANALYSIS_LINT_H_
