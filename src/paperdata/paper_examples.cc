#include "paperdata/paper_examples.h"

#include <memory>
#include <string>

#include "capability/in_memory_source.h"

namespace limcap::paperdata {

namespace {

using capability::InMemorySource;
using capability::SourceView;
using relational::Relation;
using relational::Row;

Value S(const char* text) { return Value::String(text); }

/// Builds a view, fills it with rows, and registers it.
void AddSource(PaperExample* example, const char* name,
               std::vector<std::string> attributes, const char* pattern,
               const std::vector<Row>& rows) {
  SourceView view = SourceView::MakeUnsafe(name, std::move(attributes),
                                           pattern);
  Relation data(view.schema());
  for (const Row& row : rows) data.InsertUnsafe(row);
  example->views.push_back(view);
  example->catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(view, std::move(data))));
}

}  // namespace

PaperExample MakeExample21() {
  PaperExample example;
  AddSource(&example, "v1", {"Song", "Cd"}, "bf",
            {{S("t1"), S("c1")}, {S("t2"), S("c3")}});
  AddSource(&example, "v2", {"Song", "Cd"}, "fb",
            {{S("t1"), S("c4")}, {S("t2"), S("c2")}, {S("t1"), S("c5")}});
  AddSource(&example, "v3", {"Cd", "Artist", "Price"}, "bff",
            {{S("c1"), S("a1"), S("$15")}, {S("c3"), S("a3"), S("$14")}});
  AddSource(&example, "v4", {"Cd", "Artist", "Price"}, "fbf",
            {{S("c1"), S("a1"), S("$13")},
             {S("c2"), S("a1"), S("$12")},
             {S("c4"), S("a3"), S("$10")},
             {S("c5"), S("a5"), S("$11")}});

  example.domains.SetDomain("Song", "song");
  example.domains.SetDomain("Cd", "cd");
  example.domains.SetDomain("Artist", "artist");
  example.domains.SetDomain("Price", "price");

  example.query = planner::Query(
      {{"Song", S("t1")}}, {"Price"},
      {planner::Connection({"v1", "v3"}), planner::Connection({"v1", "v4"}),
       planner::Connection({"v2", "v3"}), planner::Connection({"v2", "v4"})});
  return example;
}

PaperExample MakeExample41() {
  PaperExample example;
  AddSource(&example, "v1", {"A", "C"}, "bf", {{S("a0"), S("c1")}});
  AddSource(&example, "v2", {"A", "B", "C"}, "ffb",
            {{S("a0"), S("b1"), S("c2")},
             {S("a9"), S("b2"), S("c3")},
             // Only reachable in the complete answer: c9 never enters
             // domC under the source restrictions.
             {S("a0"), S("b5"), S("c9")}});
  AddSource(&example, "v3", {"C", "D"}, "bf",
            {{S("c1"), S("d1")},
             {S("c2"), S("d2")},
             {S("c3"), S("d3")},
             {S("c9"), S("d9")}});
  AddSource(&example, "v4", {"C", "E"}, "ff",
            {{S("c2"), S("e1")}, {S("c4"), S("e2")}});
  AddSource(&example, "v5", {"E", "F"}, "bf", {{S("e1"), S("f1")}});

  example.query = planner::Query(
      {{"A", S("a0")}}, {"D"},
      {planner::Connection({"v1", "v3"}), planner::Connection({"v2", "v3"})});
  return example;
}

PaperExample MakeExample51() {
  PaperExample example;
  AddSource(&example, "v1", {"A", "B", "C"}, "bff",
            {{S("a"), S("b"), S("c")}});
  AddSource(&example, "v2", {"B", "D", "E", "F"}, "bbbf",
            {{S("b"), S("d"), S("e"), S("f")}});
  AddSource(&example, "v3", {"C", "D", "E", "G"}, "bbff",
            {{S("c"), S("d"), S("e"), S("g")}});
  AddSource(&example, "v4", {"D", "H"}, "ff", {{S("d"), S("h1")}});
  AddSource(&example, "v5", {"E", "I"}, "ff", {{S("e"), S("i1")}});

  example.query =
      planner::Query({{"A", S("a")}}, {"F", "G"},
                     {planner::Connection({"v1", "v2", "v3"})});
  return example;
}

PaperExample MakeExample52() {
  PaperExample example;
  AddSource(&example, "v1", {"A", "B", "C"}, "bff",
            {{S("a1"), S("b0"), S("c1")}, {S("a2"), S("b9"), S("c2")}});
  AddSource(&example, "v2", {"C", "D", "E"}, "bff",
            {{S("c1"), S("d1"), S("e1")}});
  AddSource(&example, "v3", {"E", "F", "A"}, "bff",
            {{S("e1"), S("f1"), S("a1")}});
  AddSource(&example, "v4", {"E", "G"}, "ff", {{S("e1"), S("g1")}});

  example.query =
      planner::Query({{"B", S("b0")}}, {"A", "C", "E"},
                     {planner::Connection({"v1", "v2", "v3"})});
  return example;
}

}  // namespace limcap::paperdata
