#ifndef LIMCAP_PAPERDATA_PAPER_EXAMPLES_H_
#define LIMCAP_PAPERDATA_PAPER_EXAMPLES_H_

#include <vector>

#include "capability/source_catalog.h"
#include "capability/source_view.h"
#include "planner/domain_map.h"
#include "planner/query.h"

namespace limcap::paperdata {

/// One of the paper's worked examples, fully materialized: the adorned
/// views, live in-memory sources holding the instance data, the domain
/// map, and the example's query.
struct PaperExample {
  capability::SourceCatalog catalog;
  std::vector<capability::SourceView> views;
  planner::DomainMap domains;
  planner::Query query;
};

/// Example 2.1 (Table 1 / Figure 1): four musical-CD sources.
///
///   v1(Song, Cd)            [bf]   {<t1,c1>, <t2,c3>}
///   v2(Song, Cd)            [fb]   {<t1,c4>, <t2,c2>, <t1,c5>}
///   v3(Cd, Artist, Price)   [bff]  {<c1,a1,$15>, <c3,a3,$14>}
///   v4(Cd, Artist, Price)   [fbf]  {<c1,a1,$13>, <c2,a1,$12>,
///                                   <c4,a3,$10>, <c5,a5,$11>}
///
/// Query: <{Song = t1}, {Price}, {{v1,v3},{v1,v4},{v2,v3},{v2,v4}}>.
/// Expected: obtainable answer {$15, $13, $10}; complete answer
/// {$15, $13, $11, $10}; the per-join baseline obtains only {$15}.
/// Domain predicates are named song/cd/artist/price as in Figure 2.
PaperExample MakeExample21();

/// Example 4.1 (Figures 3/4): five views
///
///   v1(A, C)    [bf]    v2(A, B, C) [ffb]   v3(C, D) [bf]
///   v4(C, E)    [ff]    v5(E, F)    [bf]
///
/// Query: <{A = a0}, {D}, {T1 = {v1,v3}, T2 = {v2,v3}}>. T1 is
/// independent; T2 is not (kernel {C}, b-closure {v1,v2,v4}); v5 is
/// irrelevant to both. The instance data makes T2 contribute an answer
/// that needs v4's bindings, plus a complete-only tuple unobtainable
/// under the restrictions.
PaperExample MakeExample41();

/// Example 5.1 (Figure 5): connection T = {v1,v2,v3} with kernel {D};
/// v4(D, H) [ff] is relevant (only view with D free), v5(E, I) [ff] binds
/// E but is irrelevant (Theorem 5.1).
///
///   v1(A, B, C)    [bff]   v2(B, D, E, F) [bbbf]
///   v3(C, D, E, G) [bbff]  v4(D, H) [ff]   v5(E, I) [ff]
///
/// Query: <{A = a}, {F, G}, {T}>.
PaperExample MakeExample51();

/// Example 5.2 (Figure 6): the multiple-kernel connection.
///
///   v1(A, B, C) [bff]   v2(C, D, E) [bff]
///   v3(E, F, A) [bff]   v4(E, G)    [ff]
///
/// Query: <{B = b0}, {A, C, E}, {T = {v1,v2,v3}}>. T has kernels {A},
/// {C}, {E}, all with backward-closure {v1,v2,v3,v4} (Lemma 5.3).
PaperExample MakeExample52();

}  // namespace limcap::paperdata

#endif  // LIMCAP_PAPERDATA_PAPER_EXAMPLES_H_
