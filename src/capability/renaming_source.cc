#include "capability/renaming_source.h"

namespace limcap::capability {

Result<RenamingSource> RenamingSource::Make(
    std::unique_ptr<Source> inner, std::map<std::string, std::string> renaming,
    std::string exported_name) {
  const SourceView& local = inner->view();
  std::vector<std::string> global_attributes;
  std::map<std::string, std::string> to_local;
  for (const std::string& attribute : local.schema().attributes()) {
    auto it = renaming.find(attribute);
    const std::string& global =
        it == renaming.end() ? attribute : it->second;
    if (!to_local.emplace(global, attribute).second) {
      return Status::InvalidArgument(
          "renaming maps two attributes of " + local.name() + " to " +
          global);
    }
    global_attributes.push_back(global);
  }
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema schema,
                          relational::Schema::Make(global_attributes));
  LIMCAP_ASSIGN_OR_RETURN(
      SourceView view,
      SourceView::Make(
          exported_name.empty() ? local.name() : std::move(exported_name),
          std::move(schema), local.templates()));
  return RenamingSource(std::move(inner), std::move(view),
                        std::move(to_local));
}

Result<relational::Relation> RenamingSource::Execute(
    const SourceQuery& query) {
  SourceQuery local_query;
  for (const auto& [attribute, value] : query.bindings) {
    auto it = to_local_.find(attribute);
    if (it == to_local_.end()) {
      return Status::InvalidArgument("query binds unknown attribute " +
                                     attribute + " of view " + view_.name());
    }
    local_query.bindings.emplace(it->second, value);
  }
  LIMCAP_ASSIGN_OR_RETURN(relational::Relation local_result,
                          inner_->Execute(local_query));
  // Positions are unchanged; only the schema is renamed.
  relational::Relation renamed(view_.schema());
  for (const relational::Row& row : local_result.rows()) {
    renamed.InsertUnsafe(row);
  }
  return renamed;
}

}  // namespace limcap::capability
