#include "capability/renaming_source.h"

namespace limcap::capability {

Result<RenamingSource> RenamingSource::Make(
    std::unique_ptr<Source> inner, std::map<std::string, std::string> renaming,
    std::string exported_name) {
  const SourceView& local = inner->view();
  std::vector<std::string> global_attributes;
  std::map<std::string, std::string> to_local;
  for (const std::string& attribute : local.schema().attributes()) {
    auto it = renaming.find(attribute);
    const std::string& global =
        it == renaming.end() ? attribute : it->second;
    if (!to_local.emplace(global, attribute).second) {
      return Status::InvalidArgument(
          "renaming maps two attributes of " + local.name() + " to " +
          global);
    }
    global_attributes.push_back(global);
  }
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema schema,
                          relational::Schema::Make(global_attributes));
  LIMCAP_ASSIGN_OR_RETURN(
      SourceView view,
      SourceView::Make(
          exported_name.empty() ? local.name() : std::move(exported_name),
          std::move(schema), local.templates()));
  return RenamingSource(std::move(inner), std::move(view),
                        std::move(to_local));
}

Result<relational::Relation> RenamingSource::Execute(
    const SourceQuery& query) {
  // Queries are positional and renaming never moves a position, so the
  // query passes through untranslated; only the answer's schema changes.
  for (uint32_t pos : query.positions) {
    if (pos >= view_.schema().arity()) {
      return Status::InvalidArgument(
          "query binds position " + std::to_string(pos) +
          " outside the schema of view " + view_.name());
    }
  }
  LIMCAP_ASSIGN_OR_RETURN(relational::Relation local_result,
                          inner_->Execute(query));
  relational::Relation renamed(view_.schema(), local_result.dict_ptr());
  relational::IdRow row;
  for (std::size_t pos = 0; pos < local_result.size(); ++pos) {
    local_result.GatherRowIds(pos, &row);
    renamed.InsertIdsUnsafe(row);
  }
  return renamed;
}

}  // namespace limcap::capability
