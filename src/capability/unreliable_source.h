#ifndef LIMCAP_CAPABILITY_UNRELIABLE_SOURCE_H_
#define LIMCAP_CAPABILITY_UNRELIABLE_SOURCE_H_

#include <memory>

#include "capability/source.h"

namespace limcap::capability {

/// Failure-injection decorator: fails the first `fail_first` Execute
/// calls (with kInternal, as a wrapper timeout would surface), then
/// delegates. Deterministic, for testing the integration system's
/// behavior when autonomous Web sources misbehave.
class UnreliableSource : public Source {
 public:
  UnreliableSource(std::unique_ptr<Source> inner, std::size_t fail_first)
      : inner_(std::move(inner)), fail_first_(fail_first) {}

  const SourceView& view() const override { return inner_->view(); }

  Result<relational::Relation> Execute(const SourceQuery& query) override {
    ++attempts_;
    if (attempts_ <= fail_first_) {
      return Status::Internal("source " + view().name() +
                              " unavailable (injected failure " +
                              std::to_string(attempts_) + "/" +
                              std::to_string(fail_first_) + ")");
    }
    return inner_->Execute(query);
  }

  std::size_t attempts() const { return attempts_; }

 private:
  std::unique_ptr<Source> inner_;
  std::size_t fail_first_;
  std::size_t attempts_ = 0;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_UNRELIABLE_SOURCE_H_
