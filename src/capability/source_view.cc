#include "capability/source_view.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace limcap::capability {

namespace {

AttributeSet PositionsToAttributes(const relational::Schema& schema,
                                   const std::vector<std::size_t>& positions) {
  AttributeSet out;
  for (std::size_t i : positions) out.insert(schema.attribute(i));
  return out;
}

}  // namespace

Result<SourceView> SourceView::Make(std::string name,
                                    relational::Schema schema,
                                    BindingPattern pattern) {
  std::vector<BindingPattern> templates;
  templates.push_back(std::move(pattern));
  return Make(std::move(name), std::move(schema), std::move(templates));
}

Result<SourceView> SourceView::Make(std::string name,
                                    relational::Schema schema,
                                    std::vector<BindingPattern> templates) {
  if (name.empty()) {
    return Status::InvalidArgument("source view name is empty");
  }
  if (templates.empty()) {
    return Status::InvalidArgument("view " + name + " has no template");
  }
  for (const BindingPattern& pattern : templates) {
    if (schema.arity() != pattern.arity()) {
      return Status::InvalidArgument(
          "binding pattern arity " + std::to_string(pattern.arity()) +
          " != schema arity " + std::to_string(schema.arity()) +
          " for view " + name);
    }
  }
  for (std::size_t i = 0; i < templates.size(); ++i) {
    AttributeSet bound_i =
        PositionsToAttributes(schema, templates[i].BoundPositions());
    for (std::size_t j = 0; j < templates.size(); ++j) {
      if (i == j) continue;
      AttributeSet bound_j =
          PositionsToAttributes(schema, templates[j].BoundPositions());
      // Template i is redundant if its requirements imply template j's
      // (every query usable under i is usable under j). Strict-superset
      // only: duplicate patterns are caught by i < j.
      bool i_implies_j = std::includes(bound_i.begin(), bound_i.end(),
                                       bound_j.begin(), bound_j.end());
      if (i_implies_j && (bound_i != bound_j || i > j)) {
        return Status::InvalidArgument(
            "view " + name + ": template " + templates[i].ToString() +
            " is redundant given template " + templates[j].ToString());
      }
    }
  }
  return SourceView(std::move(name), std::move(schema), std::move(templates));
}

SourceView SourceView::MakeUnsafe(std::string name,
                                  std::vector<std::string> attributes,
                                  std::string_view pattern) {
  return MakeUnsafe(std::move(name), std::move(attributes),
                    std::vector<std::string>{std::string(pattern)});
}

SourceView SourceView::MakeUnsafe(std::string name,
                                  std::vector<std::string> attributes,
                                  std::vector<std::string> patterns) {
  auto schema = relational::Schema::Make(std::move(attributes));
  if (!schema.ok()) std::abort();
  std::vector<BindingPattern> templates;
  for (const std::string& pattern : patterns) {
    auto parsed = BindingPattern::Parse(pattern);
    if (!parsed.ok()) std::abort();
    templates.push_back(std::move(parsed).value());
  }
  auto view = Make(std::move(name), std::move(schema).value(),
                   std::move(templates));
  if (!view.ok()) std::abort();
  return std::move(view).value();
}

AttributeSet SourceView::Attributes() const {
  return AttributeSet(schema_.attributes().begin(),
                      schema_.attributes().end());
}

AttributeSet SourceView::BoundAttributes() const { return BoundAttributes(0); }

AttributeSet SourceView::FreeAttributes() const { return FreeAttributes(0); }

AttributeSet SourceView::BoundAttributes(std::size_t template_index) const {
  return PositionsToAttributes(schema_,
                               templates_[template_index].BoundPositions());
}

AttributeSet SourceView::FreeAttributes(std::size_t template_index) const {
  return PositionsToAttributes(schema_,
                               templates_[template_index].FreePositions());
}

bool SourceView::RequirementsSatisfiedBy(const AttributeSet& bound) const {
  return SatisfiedTemplate(bound).has_value();
}

std::optional<std::size_t> SourceView::SatisfiedTemplate(
    const AttributeSet& bound) const {
  for (std::size_t t = 0; t < templates_.size(); ++t) {
    bool satisfied = true;
    for (std::size_t i : templates_[t].BoundPositions()) {
      if (bound.count(schema_.attribute(i)) == 0) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return t;
  }
  return std::nullopt;
}

std::string SourceView::ToString() const {
  return name_ + schema_.ToString() + " [" +
         JoinMapped(templates_, "|",
                    [](const BindingPattern& p) { return p.ToString(); }) +
         "]";
}

std::string SourceView::FormatQuery(
    const std::map<std::string, Value>& bindings) const {
  std::vector<std::string> parts;
  for (const std::string& attribute : schema_.attributes()) {
    auto it = bindings.find(attribute);
    if (it != bindings.end()) {
      parts.push_back(it->second.ToString());
    } else {
      parts.push_back(attribute.substr(0, 1));
    }
  }
  return name_ + "(" + Join(parts, ", ") + ")";
}

}  // namespace limcap::capability
