#ifndef LIMCAP_CAPABILITY_IN_MEMORY_SOURCE_H_
#define LIMCAP_CAPABILITY_IN_MEMORY_SOURCE_H_

#include <memory>
#include <mutex>
#include <utility>

#include "capability/source.h"

namespace limcap::capability {

/// A source backed by an in-memory relation. This is the test double for a
/// real wrapper (paper Section 2.1 assumes wrappers export relational
/// views): it enforces the view's binding requirements exactly as a Web
/// form with required fields would, and answers with the tuples matching
/// the supplied bindings.
class InMemorySource : public Source {
 public:
  /// `data`'s schema must equal the view's schema.
  static Result<InMemorySource> Make(SourceView view,
                                     relational::Relation data);

  /// Aborting variant for static catalogs.
  static InMemorySource MakeUnsafe(SourceView view, relational::Relation data);

  const SourceView& view() const override { return view_; }

  /// Enforces capabilities: fails with kCapabilityViolation when a
  /// must-bind attribute is missing from `query`, and kInvalidArgument
  /// when a binding names an attribute outside the schema. Safe to call
  /// concurrently (probing builds column indexes in `data_` lazily, so
  /// calls are internally serialized).
  Result<relational::Relation> Execute(const SourceQuery& query) override;

  const relational::Relation& data() const { return data_; }

 private:
  InMemorySource(SourceView view, relational::Relation data)
      : view_(std::move(view)), data_(std::move(data)) {}

  SourceView view_;
  relational::Relation data_;
  /// Held indirectly so the source stays movable (factories return by
  /// value).
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_IN_MEMORY_SOURCE_H_
