#ifndef LIMCAP_CAPABILITY_BINDING_PATTERN_H_
#define LIMCAP_CAPABILITY_BINDING_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace limcap::capability {

/// Adornment of one attribute position in a source-view template
/// (paper Section 2.1): `b` — the attribute must be bound in every query
/// sent to the source; `f` — the attribute may be left free.
enum class Adornment : char { kBound = 'b', kFree = 'f' };

/// The adornment string of a source view, e.g. "bff" for v1(A, B, C)
/// meaning A must be bound and B, C may be free.
class BindingPattern {
 public:
  BindingPattern() = default;
  explicit BindingPattern(std::vector<Adornment> adornments)
      : adornments_(std::move(adornments)) {}

  /// Parses "bff"; fails on any character other than 'b'/'f'.
  static Result<BindingPattern> Parse(std::string_view text);

  /// The all-free pattern of the given arity (an unrestricted source).
  static BindingPattern AllFree(std::size_t arity);

  std::size_t arity() const { return adornments_.size(); }
  Adornment at(std::size_t i) const { return adornments_[i]; }
  bool IsBound(std::size_t i) const { return adornments_[i] == Adornment::kBound; }
  bool IsFree(std::size_t i) const { return adornments_[i] == Adornment::kFree; }

  /// Positions adorned 'b'.
  std::vector<std::size_t> BoundPositions() const;
  /// Positions adorned 'f'.
  std::vector<std::size_t> FreePositions() const;

  /// Number of 'b' positions.
  std::size_t bound_count() const { return BoundPositions().size(); }

  /// "bff".
  std::string ToString() const;

  bool operator==(const BindingPattern& other) const {
    return adornments_ == other.adornments_;
  }

 private:
  std::vector<Adornment> adornments_;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_BINDING_PATTERN_H_
