#include "capability/source_catalog.h"

#include <cstdlib>

namespace limcap::capability {

Status SourceCatalog::Register(std::unique_ptr<Source> source) {
  const std::string& name = source->view().name();
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("source view already registered: " + name);
  }
  by_name_.emplace(name, sources_.size());
  sources_.push_back(std::move(source));
  return Status::OK();
}

void SourceCatalog::RegisterUnsafe(std::unique_ptr<Source> source) {
  if (!Register(std::move(source)).ok()) std::abort();
}

std::vector<SourceView> SourceCatalog::Views() const {
  std::vector<SourceView> views;
  views.reserve(sources_.size());
  for (const auto& source : sources_) views.push_back(source->view());
  return views;
}

std::vector<std::string> SourceCatalog::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& source : sources_) names.push_back(source->view().name());
  return names;
}

Result<Source*> SourceCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no source view named " + name);
  }
  return sources_[it->second].get();
}

Result<const SourceView*> SourceCatalog::FindView(
    const std::string& name) const {
  LIMCAP_ASSIGN_OR_RETURN(Source * source, Find(name));
  return &source->view();
}

AttributeSet SourceCatalog::AllAttributes() const {
  AttributeSet all;
  for (const auto& source : sources_) {
    AttributeSet attrs = source->view().Attributes();
    all.insert(attrs.begin(), attrs.end());
  }
  return all;
}

std::string SourceCatalog::ToString() const {
  std::string out;
  for (const auto& source : sources_) {
    out += source->view().ToString();
    out += '\n';
  }
  return out;
}

}  // namespace limcap::capability
