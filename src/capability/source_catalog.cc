#include "capability/source_catalog.h"

#include <cstdlib>

namespace limcap::capability {

Status SourceCatalog::Register(std::unique_ptr<Source> source) {
  const std::string& name = source->view().name();
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("source view already registered: " + name);
  }
  fingerprint_ ^= CatalogSlotFingerprint(source->view(), sources_.size());
  by_name_.emplace(name, sources_.size());
  sources_.push_back(std::move(source));
  return Status::OK();
}

Status SourceCatalog::Deregister(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no source view named " + name);
  }
  sources_.erase(sources_.begin() +
                 static_cast<std::ptrdiff_t>(it->second));
  // Every later view moved down one slot: rebuild the index and recompute
  // the fingerprint from scratch (membership changes are rare next to
  // lookups; O(n) here keeps Register at one XOR).
  by_name_.clear();
  fingerprint_ = kEmptyCatalogFingerprint;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    by_name_.emplace(sources_[i]->view().name(), i);
    fingerprint_ ^= CatalogSlotFingerprint(sources_[i]->view(), i);
  }
  return Status::OK();
}

void SourceCatalog::RegisterUnsafe(std::unique_ptr<Source> source) {
  if (!Register(std::move(source)).ok()) std::abort();
}

std::vector<SourceView> SourceCatalog::Views() const {
  std::vector<SourceView> views;
  views.reserve(sources_.size());
  for (const auto& source : sources_) views.push_back(source->view());
  return views;
}

std::vector<std::string> SourceCatalog::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& source : sources_) names.push_back(source->view().name());
  return names;
}

Result<Source*> SourceCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no source view named " + name);
  }
  return sources_[it->second].get();
}

Result<const SourceView*> SourceCatalog::FindView(
    const std::string& name) const {
  LIMCAP_ASSIGN_OR_RETURN(Source * source, Find(name));
  return &source->view();
}

AttributeSet SourceCatalog::AllAttributes() const {
  AttributeSet all;
  for (const auto& source : sources_) {
    AttributeSet attrs = source->view().Attributes();
    all.insert(attrs.begin(), attrs.end());
  }
  return all;
}

std::string SourceCatalog::ToString() const {
  std::string out;
  for (const auto& source : sources_) {
    out += source->view().ToString();
    out += '\n';
  }
  return out;
}

}  // namespace limcap::capability
