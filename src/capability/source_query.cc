#include <algorithm>
#include <cstdlib>

#include "capability/source.h"
#include "common/string_util.h"

namespace limcap::capability {

Result<SourceQuery> SourceQuery::Make(
    const SourceView& view, ValueDictionaryPtr dict,
    std::vector<std::pair<std::string, Value>> bindings) {
  std::vector<std::pair<uint32_t, ValueId>> encoded;
  encoded.reserve(bindings.size());
  for (const auto& [attribute, value] : bindings) {
    auto index = view.schema().IndexOf(attribute);
    if (!index.has_value()) {
      return Status::InvalidArgument("query binds unknown attribute " +
                                     attribute + " of view " + view.name());
    }
    encoded.emplace_back(static_cast<uint32_t>(*index), dict->Intern(value));
  }
  std::sort(encoded.begin(), encoded.end());
  for (std::size_t i = 1; i < encoded.size(); ++i) {
    if (encoded[i].first == encoded[i - 1].first) {
      return Status::InvalidArgument(
          "query binds attribute " +
          view.schema().attribute(encoded[i].first) + " of view " +
          view.name() + " twice");
    }
  }
  SourceQuery query;
  query.dict = std::move(dict);
  query.positions.reserve(encoded.size());
  query.ids.reserve(encoded.size());
  for (const auto& [position, id] : encoded) {
    query.positions.push_back(position);
    query.ids.push_back(id);
  }
  return query;
}

SourceQuery SourceQuery::MakeUnsafe(
    const SourceView& view, ValueDictionaryPtr dict,
    std::vector<std::pair<std::string, Value>> bindings) {
  auto query = Make(view, std::move(dict), std::move(bindings));
  if (!query.ok()) std::abort();
  return std::move(query).value();
}

bool SourceQuery::BindsPosition(uint32_t pos) const {
  return std::binary_search(positions.begin(), positions.end(), pos);
}

bool SourceQuery::Satisfies(const BindingPattern& pattern) const {
  for (std::size_t pos : pattern.BoundPositions()) {
    if (!BindsPosition(static_cast<uint32_t>(pos))) return false;
  }
  return true;
}

std::optional<std::size_t> SourceQuery::SatisfiedTemplate(
    const SourceView& view) const {
  for (std::size_t t = 0; t < view.templates().size(); ++t) {
    if (Satisfies(view.templates()[t])) return t;
  }
  return std::nullopt;
}

std::map<std::string, Value> SourceQuery::DecodedBindings(
    const SourceView& view) const {
  std::map<std::string, Value> decoded;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    decoded.emplace(view.schema().attribute(positions[i]),
                    dict->Get(ids[i]));
  }
  return decoded;
}

std::string SourceQuery::Render(const SourceView& view) const {
  std::vector<std::string> parts;
  const relational::Schema& schema = view.schema();
  std::size_t next = 0;
  for (std::size_t col = 0; col < schema.arity(); ++col) {
    if (next < positions.size() && positions[next] == col) {
      parts.push_back(dict->Get(ids[next]).ToString());
      ++next;
    } else {
      parts.push_back(schema.attribute(col).substr(0, 1));
    }
  }
  return view.name() + "(" + Join(parts, ", ") + ")";
}

}  // namespace limcap::capability
