#ifndef LIMCAP_CAPABILITY_CACHING_SOURCE_H_
#define LIMCAP_CAPABILITY_CACHING_SOURCE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "capability/source.h"

namespace limcap::capability {

/// Decorates a Source with an answer cache keyed by the query's bindings.
/// Repeated identical queries hit the cache instead of the source —
/// modeling the mediator-side caching Section 7.1 discusses, and letting
/// benches separate "distinct source accesses" from "query issuances".
///
/// Queries arrive encoded against the caller's session dictionary, which
/// changes between answering sessions, so cache keys re-encode the bound
/// values into a cache-local dictionary: two queries binding the same
/// attributes to the same values collide regardless of which session (or
/// binding-supply order) produced them. Cached answers are stored as
/// returned and re-keyed to the requesting session's dictionary on a hit
/// when it differs from the one the answer was produced under.
class CachingSource : public Source {
 public:
  explicit CachingSource(std::unique_ptr<Source> inner)
      : inner_(std::move(inner)) {}

  const SourceView& view() const override { return inner_->view(); }

  /// Safe to call concurrently; callers are internally serialized (the
  /// cache and its key dictionary are shared mutable state).
  Result<relational::Relation> Execute(const SourceQuery& query) override;

  std::size_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::size_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  /// Tuples observed so far across all cached answers, usable as the
  /// cached data that Section 7.1 turns into extra fact rules. The
  /// returned relation owns a fresh dictionary.
  relational::Relation ObservedTuples() const;

 private:
  /// Session-independent cache key: bound positions plus the bound
  /// values' ids in the cache-local dictionary.
  struct CacheKey {
    std::vector<uint32_t> positions;
    std::vector<ValueId> local_ids;
    bool operator<(const CacheKey& other) const {
      if (positions != other.positions) return positions < other.positions;
      return local_ids < other.local_ids;
    }
  };

  mutable std::mutex mutex_;
  std::unique_ptr<Source> inner_;
  ValueDictionary key_dict_;
  std::map<CacheKey, relational::Relation> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_CACHING_SOURCE_H_
