#ifndef LIMCAP_CAPABILITY_CACHING_SOURCE_H_
#define LIMCAP_CAPABILITY_CACHING_SOURCE_H_

#include <map>
#include <memory>

#include "capability/source.h"

namespace limcap::capability {

/// Decorates a Source with an answer cache keyed by the query's bindings.
/// Repeated identical queries hit the cache instead of the source —
/// modeling the mediator-side caching Section 7.1 discusses, and letting
/// benches separate "distinct source accesses" from "query issuances".
class CachingSource : public Source {
 public:
  explicit CachingSource(std::unique_ptr<Source> inner)
      : inner_(std::move(inner)) {}

  const SourceView& view() const override { return inner_->view(); }

  Result<relational::Relation> Execute(const SourceQuery& query) override;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  /// Tuples observed so far across all cached answers, usable as the
  /// cached data that Section 7.1 turns into extra fact rules.
  relational::Relation ObservedTuples() const;

 private:
  std::unique_ptr<Source> inner_;
  std::map<SourceQuery, relational::Relation> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_CACHING_SOURCE_H_
