#include "capability/in_memory_source.h"

#include <cstdlib>

namespace limcap::capability {

Result<InMemorySource> InMemorySource::Make(SourceView view,
                                            relational::Relation data) {
  if (!(data.schema() == view.schema())) {
    return Status::InvalidArgument("data schema " + data.schema().ToString() +
                                   " != view schema " +
                                   view.schema().ToString() + " for " +
                                   view.name());
  }
  return InMemorySource(std::move(view), std::move(data));
}

InMemorySource InMemorySource::MakeUnsafe(SourceView view,
                                          relational::Relation data) {
  auto source = Make(std::move(view), std::move(data));
  if (!source.ok()) std::abort();
  return std::move(source).value();
}

Result<relational::Relation> InMemorySource::Execute(
    const SourceQuery& query) {
  // The fetch scheduler may call Execute from several threads, and
  // ProbeEachIds builds column indexes in data_ lazily on first use.
  std::lock_guard<std::mutex> lock(*mutex_);
  // Validate positions (queries built via SourceQuery::Make always pass;
  // engine-built queries are checked here).
  for (uint32_t pos : query.positions) {
    if (pos >= view_.schema().arity()) {
      return Status::InvalidArgument(
          "query binds position " + std::to_string(pos) +
          " outside the schema of view " + view_.name());
    }
  }
  // Enforce the binding patterns: some template must be satisfied.
  if (!query.SatisfiedTemplate(view_).has_value()) {
    return Status::CapabilityViolation(
        "query to " + view_.name() +
        " satisfies none of its templates: " + view_.ToString());
  }
  ValueDictionaryPtr out_dict =
      query.dict != nullptr ? query.dict : std::make_shared<ValueDictionary>();
  relational::Relation out(view_.schema(), out_dict);
  std::vector<std::size_t> columns(query.positions.begin(),
                                   query.positions.end());
  relational::IdRow key;
  key.reserve(query.ids.size());
  if (data_.dict_ptr() == query.dict) {
    // The source data already encodes against the caller's dictionary:
    // the whole answer path is id-to-id.
    key.assign(query.ids.begin(), query.ids.end());
    relational::IdRow row;
    data_.ProbeEachIds(columns, key, [&](std::size_t pos) {
      data_.GatherRowIds(pos, &row);
      out.InsertIdsUnsafe(row);
      return true;
    });
    return out;
  }
  // Translate the session-encoded key into the source's private
  // dictionary; a value this source never stored cannot match any tuple.
  for (std::size_t i = 0; i < query.ids.size(); ++i) {
    ValueId local;
    if (!data_.dict().Lookup(query.dict->Get(query.ids[i]), &local)) {
      return out;
    }
    key.push_back(local);
  }
  data_.ProbeEachIds(columns, key, [&](std::size_t pos) {
    // The single Value→id translation of the interned execution path:
    // returned tuples are interned into the caller's dictionary here.
    out.InsertUnsafe(data_.DecodeRow(pos));
    return true;
  });
  return out;
}

}  // namespace limcap::capability
