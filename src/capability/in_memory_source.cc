#include "capability/in_memory_source.h"

#include <cstdlib>

namespace limcap::capability {

Result<InMemorySource> InMemorySource::Make(SourceView view,
                                            relational::Relation data) {
  if (!(data.schema() == view.schema())) {
    return Status::InvalidArgument("data schema " + data.schema().ToString() +
                                   " != view schema " +
                                   view.schema().ToString() + " for " +
                                   view.name());
  }
  return InMemorySource(std::move(view), std::move(data));
}

InMemorySource InMemorySource::MakeUnsafe(SourceView view,
                                          relational::Relation data) {
  auto source = Make(std::move(view), std::move(data));
  if (!source.ok()) std::abort();
  return std::move(source).value();
}

Result<relational::Relation> InMemorySource::Execute(
    const SourceQuery& query) {
  // Validate attributes.
  for (const auto& [attribute, value] : query.bindings) {
    if (!view_.schema().Contains(attribute)) {
      return Status::InvalidArgument("query binds unknown attribute " +
                                     attribute + " of view " + view_.name());
    }
  }
  // Enforce the binding patterns: some template must be satisfied.
  AttributeSet bound;
  for (const auto& [attribute, value] : query.bindings) {
    bound.insert(attribute);
  }
  if (!view_.RequirementsSatisfiedBy(bound)) {
    return Status::CapabilityViolation(
        "query to " + view_.name() +
        " satisfies none of its templates: " + view_.ToString());
  }
  // Answer by selection.
  std::vector<std::size_t> columns;
  relational::Row key;
  for (const auto& [attribute, value] : query.bindings) {
    columns.push_back(*view_.schema().IndexOf(attribute));
    key.push_back(value);
  }
  relational::Relation out(view_.schema());
  for (std::size_t pos : data_.Probe(columns, key)) {
    out.InsertUnsafe(data_.row(pos));
  }
  return out;
}

}  // namespace limcap::capability
