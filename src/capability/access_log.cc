#include "capability/access_log.h"

#include "common/string_util.h"
#include "common/text_table.h"

namespace limcap::capability {

std::string AccessRecord::RenderedQuery() const {
  if (!rendered_query.empty()) return rendered_query;
  if (view == nullptr || query.dict == nullptr) return "";
  return query.Render(*view);
}

std::vector<std::string> AccessRecord::ReturnedRendered() const {
  if (!returned_rendered.empty() || returned_ids.empty()) {
    return returned_rendered;
  }
  std::vector<std::string> rendered;
  rendered.reserve(returned_ids.size());
  for (const relational::IdRow& row : returned_ids) {
    std::vector<std::string> parts;
    parts.reserve(row.size());
    for (ValueId id : row) parts.push_back(query.dict->Get(id).ToString());
    rendered.push_back("<" + Join(parts, ", ") + ">");
  }
  return rendered;
}

std::vector<std::string> AccessRecord::NewBindings() const {
  if (!new_bindings.empty() || new_binding_ids.empty()) return new_bindings;
  std::vector<std::string> rendered;
  rendered.reserve(new_binding_ids.size());
  for (const auto& [attribute, id] : new_binding_ids) {
    rendered.push_back(attribute + " = " + query.dict->Get(id).ToString());
  }
  return rendered;
}

void AccessLog::Record(AccessRecord record) {
  if (eager_render_) {
    record.rendered_query = record.RenderedQuery();
    record.returned_rendered = record.ReturnedRendered();
    record.new_bindings = record.NewBindings();
  }
  records_.push_back(std::move(record));
}

std::size_t AccessLog::QueriesTo(const std::string& source) const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    if (record.source == source) ++count;
  }
  return count;
}

std::size_t AccessLog::productive_queries() const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    if (record.tuples_returned > 0) ++count;
  }
  return count;
}

std::size_t AccessLog::failed_queries() const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    if (!record.error.empty()) ++count;
  }
  return count;
}

std::size_t AccessLog::total_tuples_returned() const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    count += record.tuples_returned;
  }
  return count;
}

std::vector<std::pair<std::string, std::size_t>> AccessLog::PerSourceCounts()
    const {
  std::map<std::string, std::size_t> counts;
  for (const AccessRecord& record : records_) ++counts[record.source];
  return std::vector<std::pair<std::string, std::size_t>>(counts.begin(),
                                                          counts.end());
}

std::string AccessLog::ToTable(bool productive_only) const {
  TextTable table(
      {"Order", "Source Query", "Returned Tuple(s)", "New Binding(s)"});
  std::size_t order = 0;
  for (const AccessRecord& record : records_) {
    if (productive_only && record.tuples_returned == 0) continue;
    ++order;
    table.AddRow({std::to_string(order), record.RenderedQuery(),
                  Join(record.ReturnedRendered(), ", "),
                  Join(record.NewBindings(), ", ")});
  }
  return table.ToString();
}

}  // namespace limcap::capability
