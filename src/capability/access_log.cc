#include "capability/access_log.h"

#include "common/string_util.h"
#include "common/text_table.h"

namespace limcap::capability {

void AccessLog::Record(AccessRecord record) {
  records_.push_back(std::move(record));
}

std::size_t AccessLog::QueriesTo(const std::string& source) const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    if (record.source == source) ++count;
  }
  return count;
}

std::size_t AccessLog::productive_queries() const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    if (record.tuples_returned > 0) ++count;
  }
  return count;
}

std::size_t AccessLog::failed_queries() const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    if (!record.error.empty()) ++count;
  }
  return count;
}

std::size_t AccessLog::total_tuples_returned() const {
  std::size_t count = 0;
  for (const AccessRecord& record : records_) {
    count += record.tuples_returned;
  }
  return count;
}

std::vector<std::pair<std::string, std::size_t>> AccessLog::PerSourceCounts()
    const {
  std::map<std::string, std::size_t> counts;
  for (const AccessRecord& record : records_) ++counts[record.source];
  return std::vector<std::pair<std::string, std::size_t>>(counts.begin(),
                                                          counts.end());
}

std::string AccessLog::ToTable(bool productive_only) const {
  TextTable table(
      {"Order", "Source Query", "Returned Tuple(s)", "New Binding(s)"});
  std::size_t order = 0;
  for (const AccessRecord& record : records_) {
    if (productive_only && record.tuples_returned == 0) continue;
    ++order;
    table.AddRow({std::to_string(order), record.rendered_query,
                  Join(record.returned_rendered, ", "),
                  Join(record.new_bindings, ", ")});
  }
  return table.ToString();
}

}  // namespace limcap::capability
