#include "capability/caching_source.h"

namespace limcap::capability {

Result<relational::Relation> CachingSource::Execute(const SourceQuery& query) {
  // Serializes concurrent callers: the key dictionary, the cache map and
  // the hit/miss counters are all mutated here. Holding the lock across
  // the inner call also keeps one (source, query)'s fill atomic.
  std::lock_guard<std::mutex> lock(mutex_);
  CacheKey key;
  key.positions = query.positions;
  key.local_ids.reserve(query.ids.size());
  for (ValueId id : query.ids) {
    key.local_ids.push_back(key_dict_.Intern(query.dict->Get(id)));
  }
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    if (query.dict == nullptr ||
        it->second.dict_ptr() == query.dict) {
      return it->second;
    }
    // The cached answer was produced under another session's dictionary;
    // re-key it to the requesting session (this is that session's one
    // ingest translation for these tuples).
    return it->second.WithDictionary(query.dict);
  }
  LIMCAP_ASSIGN_OR_RETURN(relational::Relation answer,
                          inner_->Execute(query));
  ++misses_;
  cache_.emplace(std::move(key), answer);
  return answer;
}

relational::Relation CachingSource::ObservedTuples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  relational::Relation all(inner_->view().schema());
  for (const auto& [key, answer] : cache_) {
    for (std::size_t pos = 0; pos < answer.size(); ++pos) {
      all.InsertUnsafe(answer.DecodeRow(pos));
    }
  }
  return all;
}

}  // namespace limcap::capability
