#include "capability/caching_source.h"

namespace limcap::capability {

Result<relational::Relation> CachingSource::Execute(const SourceQuery& query) {
  auto it = cache_.find(query);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  LIMCAP_ASSIGN_OR_RETURN(relational::Relation answer,
                          inner_->Execute(query));
  ++misses_;
  cache_.emplace(query, answer);
  return answer;
}

relational::Relation CachingSource::ObservedTuples() const {
  relational::Relation all(inner_->view().schema());
  for (const auto& [query, answer] : cache_) {
    for (const relational::Row& row : answer.rows()) {
      all.InsertUnsafe(row);
    }
  }
  return all;
}

}  // namespace limcap::capability
