#ifndef LIMCAP_CAPABILITY_SOURCE_H_
#define LIMCAP_CAPABILITY_SOURCE_H_

#include <map>
#include <string>

#include "capability/source_view.h"
#include "common/result.h"
#include "common/value.h"
#include "relational/relation.h"

namespace limcap::capability {

/// A query sent to one source: values for a subset of the view's
/// attributes. To be executable it must bind (at least) every attribute
/// the view's template adorns 'b'.
struct SourceQuery {
  std::map<std::string, Value> bindings;

  bool operator==(const SourceQuery& other) const {
    return bindings == other.bindings;
  }
  bool operator<(const SourceQuery& other) const {
    return bindings < other.bindings;
  }
};

/// An autonomous source exporting a single relational view with limited
/// query capabilities. Implementations must reject queries that violate
/// the view's binding requirements with StatusCode::kCapabilityViolation —
/// the integration system never sees the full extent of a source with a
/// 'b' adornment.
class Source {
 public:
  virtual ~Source() = default;

  virtual const SourceView& view() const = 0;

  /// Executes `query`; on success returns the matching tuples with the
  /// view's full schema.
  virtual Result<relational::Relation> Execute(const SourceQuery& query) = 0;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_SOURCE_H_
