#ifndef LIMCAP_CAPABILITY_SOURCE_H_
#define LIMCAP_CAPABILITY_SOURCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "capability/source_view.h"
#include "common/result.h"
#include "common/value.h"
#include "common/value_dictionary.h"
#include "relational/relation.h"

namespace limcap::capability {

/// A query sent to one source: dictionary-encoded values for a subset of
/// the view's attributes, positionally aligned with the view schema. To be
/// executable it must bind (at least) every attribute some template of the
/// view adorns 'b'.
///
/// `positions` are view-schema column positions in ascending order (the
/// canonical form — two queries binding the same attributes to the same
/// values compare equal regardless of the order bindings were supplied),
/// and `ids` are the parallel values, interned in `dict`. On the interned
/// execution path `dict` is the session dictionary, so building a query
/// from engine rows copies ids and translates nothing.
struct SourceQuery {
  std::vector<uint32_t> positions;
  std::vector<ValueId> ids;
  ValueDictionaryPtr dict;

  /// Builds a query from attribute-name/value bindings, interning the
  /// values into `dict`. Fails when a name is not in the view's schema or
  /// appears twice.
  static Result<SourceQuery> Make(
      const SourceView& view, ValueDictionaryPtr dict,
      std::vector<std::pair<std::string, Value>> bindings);

  /// Aborting variant for tests and static setups.
  static SourceQuery MakeUnsafe(
      const SourceView& view, ValueDictionaryPtr dict,
      std::vector<std::pair<std::string, Value>> bindings);

  std::size_t size() const { return positions.size(); }
  bool empty() const { return positions.empty(); }

  /// True when the query binds view-schema position `pos`.
  bool BindsPosition(uint32_t pos) const;

  /// True when the query's bound positions include every position the
  /// template adorns 'b'.
  bool Satisfies(const BindingPattern& pattern) const;

  /// Index of the first view template this query satisfies, or nullopt.
  std::optional<std::size_t> SatisfiedTemplate(const SourceView& view) const;

  /// Decodes the bindings to attribute-name/value form (one dictionary
  /// decode per binding) — for rendering and vocabularies outside the
  /// interned path.
  std::map<std::string, Value> DecodedBindings(const SourceView& view) const;

  /// Renders the query in the paper's notation, e.g. "v3(c1, A, P)".
  std::string Render(const SourceView& view) const;

  /// Structural equality: same positions, same ids, same dictionary
  /// object. Ids from different dictionaries are incomparable by design.
  bool operator==(const SourceQuery& other) const = default;
};

/// An autonomous source exporting a single relational view with limited
/// query capabilities. Implementations must reject queries that violate
/// the view's binding requirements with StatusCode::kCapabilityViolation —
/// the integration system never sees the full extent of a source with a
/// 'b' adornment.
///
/// Dictionary contract: `query.dict` is the caller's (session)
/// dictionary; the returned relation's rows must be encoded against that
/// same dictionary, so the one Value→id translation of returned tuples
/// happens inside the source at ingest and the caller consumes raw ids.
///
/// Concurrency contract: the fetch scheduler (runtime/fetch_scheduler.h)
/// may call Execute on the same source from several threads at once, so
/// implementations must make Execute safe for concurrent calls —
/// typically by serializing internally (the in-tree sources do). Note
/// that ValueDictionary::Intern is NOT thread-safe: a source must only
/// intern into `query.dict`, never into a dictionary another in-flight
/// call might be interning into (the scheduler hands concurrent calls
/// private dictionaries to make this hold for `query.dict` itself).
class Source {
 public:
  virtual ~Source() = default;

  virtual const SourceView& view() const = 0;

  /// Executes `query`; on success returns the matching tuples with the
  /// view's full schema, encoded against `query.dict`.
  virtual Result<relational::Relation> Execute(const SourceQuery& query) = 0;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_SOURCE_H_
