#include "capability/binding_pattern.h"

namespace limcap::capability {

Result<BindingPattern> BindingPattern::Parse(std::string_view text) {
  std::vector<Adornment> adornments;
  adornments.reserve(text.size());
  for (char c : text) {
    if (c == 'b') {
      adornments.push_back(Adornment::kBound);
    } else if (c == 'f') {
      adornments.push_back(Adornment::kFree);
    } else {
      return Status::InvalidArgument(
          std::string("invalid adornment character '") + c +
          "' (expected 'b' or 'f')");
    }
  }
  return BindingPattern(std::move(adornments));
}

BindingPattern BindingPattern::AllFree(std::size_t arity) {
  return BindingPattern(std::vector<Adornment>(arity, Adornment::kFree));
}

std::vector<std::size_t> BindingPattern::BoundPositions() const {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < adornments_.size(); ++i) {
    if (adornments_[i] == Adornment::kBound) positions.push_back(i);
  }
  return positions;
}

std::vector<std::size_t> BindingPattern::FreePositions() const {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < adornments_.size(); ++i) {
    if (adornments_[i] == Adornment::kFree) positions.push_back(i);
  }
  return positions;
}

std::string BindingPattern::ToString() const {
  std::string out;
  out.reserve(adornments_.size());
  for (Adornment a : adornments_) out += static_cast<char>(a);
  return out;
}

}  // namespace limcap::capability
