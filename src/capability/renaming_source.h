#ifndef LIMCAP_CAPABILITY_RENAMING_SOURCE_H_
#define LIMCAP_CAPABILITY_RENAMING_SOURCE_H_

#include <map>
#include <memory>
#include <string>

#include "capability/source.h"

namespace limcap::capability {

/// The wrapper layer of the paper's Section 2.1: sources use their own
/// vocabularies; wrappers resolve them to the global attribute set. A
/// RenamingSource presents an inner source under renamed attributes
/// (binding patterns unchanged): queries arrive in global names and are
/// translated to the source's local names; answers come back under the
/// global schema.
class RenamingSource : public Source {
 public:
  /// `renaming` maps local attribute names to global ones; attributes
  /// not mentioned keep their name. Fails when the renamed schema is
  /// invalid (e.g. two locals map to one global). `exported_name`
  /// optionally renames the view itself (empty keeps the inner name).
  static Result<RenamingSource> Make(std::unique_ptr<Source> inner,
                                     std::map<std::string, std::string> renaming,
                                     std::string exported_name = "");

  const SourceView& view() const override { return view_; }

  Result<relational::Relation> Execute(const SourceQuery& query) override;

 private:
  RenamingSource(std::unique_ptr<Source> inner, SourceView view,
                 std::map<std::string, std::string> to_local)
      : inner_(std::move(inner)),
        view_(std::move(view)),
        to_local_(std::move(to_local)) {}

  std::unique_ptr<Source> inner_;
  SourceView view_;                              // global names
  std::map<std::string, std::string> to_local_;  // global -> local
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_RENAMING_SOURCE_H_
