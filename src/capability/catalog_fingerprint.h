#ifndef LIMCAP_CAPABILITY_CATALOG_FINGERPRINT_H_
#define LIMCAP_CAPABILITY_CATALOG_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "capability/source_view.h"

namespace limcap::capability {

/// Fingerprint of the empty catalog (an arbitrary nonzero constant, so
/// "no views" differs from a combination that cancels to zero). This is
/// the incremental fingerprint's starting value in SourceCatalog.
inline constexpr uint64_t kEmptyCatalogFingerprint = 0x9e3779b97f4a7c15ULL;

/// Stable 64-bit FNV-1a over bytes. Unlike std::hash, the value is fixed
/// by the algorithm — identical across processes, platforms and library
/// versions — so fingerprints can appear in golden files, logs and
/// cache-debugging CLI output and still mean the same catalog everywhere.
uint64_t StableHash64(std::string_view bytes);

/// Fingerprint of one view's capability surface: its name, schema
/// attributes (in schema order) and adorned templates. Two views get the
/// same fingerprint iff they export the same relation under the same
/// access restrictions; the extent behind the source does not participate
/// (plans are data-independent — a source may serve new tuples under an
/// unchanged fingerprint and every cached plan remains correct).
uint64_t ViewFingerprint(const SourceView& view);

/// Fingerprint of a whole catalog: the order-sensitive combination of the
/// views' fingerprints (registration order matters because it fixes the
/// rule order of every generated program, and thereby the deterministic
/// execution order cached plans replay). SourceCatalog maintains this
/// incrementally; the free function exists for parsed/test view lists.
uint64_t CatalogFingerprint(const std::vector<SourceView>& views);

/// The per-position term CatalogFingerprint XORs together for the view at
/// `index` — exposed so SourceCatalog can maintain its fingerprint
/// incrementally on Register (append = one XOR).
uint64_t CatalogSlotFingerprint(const SourceView& view, std::size_t index);

/// "0x0123456789abcdef" — the rendering shared by limcap_lint,
/// limcap_explain and the plan-cache report, so fingerprints can be
/// compared across tools by eye.
std::string FingerprintToString(uint64_t fingerprint);

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_CATALOG_FINGERPRINT_H_
