#include "capability/catalog_fingerprint.h"

#include <cstdio>

#include "common/hash.h"

namespace limcap::capability {

namespace {

/// Feeds one field plus a separator, so "ab"+"c" and "a"+"bc" differ.
void Feed(uint64_t& h, std::string_view field) {
  // FNV-1a continuation: rehash the running value with the new bytes.
  uint64_t piece = StableHash64(field);
  h = Mix64(h ^ piece);
}

}  // namespace

uint64_t StableHash64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

uint64_t ViewFingerprint(const SourceView& view) {
  uint64_t h = StableHash64(view.name());
  for (const std::string& attribute : view.schema().attributes()) {
    Feed(h, attribute);
  }
  for (const BindingPattern& pattern : view.templates()) {
    Feed(h, pattern.ToString());
  }
  return Mix64(h);
}

uint64_t CatalogSlotFingerprint(const SourceView& view, std::size_t index) {
  // Mixing the position in keeps the combination order-sensitive while
  // the XOR-combine stays incrementally maintainable (append = one XOR,
  // and deregister+re-register at the same position restores the value).
  return Mix64(ViewFingerprint(view) ^ Mix64(uint64_t(index) + 1));
}

uint64_t CatalogFingerprint(const std::vector<SourceView>& views) {
  uint64_t h = kEmptyCatalogFingerprint;
  for (std::size_t i = 0; i < views.size(); ++i) {
    h ^= CatalogSlotFingerprint(views[i], i);
  }
  return h;
}

std::string FingerprintToString(uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace limcap::capability
