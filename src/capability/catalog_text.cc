#include "capability/catalog_text.h"

#include <cctype>
#include <cstdlib>
#include <memory>

#include "capability/in_memory_source.h"
#include "common/string_util.h"

namespace limcap::capability {

namespace {

/// Recursive-descent parser sharing the lexical conventions of the
/// Datalog parser (identifiers, numbers, quoted strings, %-comments).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ParsedCatalog> Parse() {
    ParsedCatalog parsed;
    SkipTrivia();
    while (!AtEnd()) {
      LIMCAP_RETURN_NOT_OK(ParseSource(&parsed));
      SkipTrivia();
    }
    return parsed;
  }

 private:
  Status ParseSource(ParsedCatalog* parsed) {
    LIMCAP_ASSIGN_OR_RETURN(std::string keyword, ParseIdentifier());
    if (keyword != "source") {
      return Error("expected 'source', got '" + keyword + "'");
    }
    SkipTrivia();
    LIMCAP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    SkipTrivia();
    if (!ConsumeIf("(")) return Error("expected '(' after source name");

    std::vector<std::string> attributes;
    SkipTrivia();
    while (!ConsumeIf(")")) {
      LIMCAP_ASSIGN_OR_RETURN(std::string attribute, ParseIdentifier());
      attributes.push_back(std::move(attribute));
      SkipTrivia();
      if (ConsumeIf(",")) SkipTrivia();
    }
    SkipTrivia();
    if (!ConsumeIf("[")) return Error("expected '[' before adornment");
    std::vector<BindingPattern> templates;
    while (true) {
      SkipTrivia();
      std::string adornment;
      while (!AtEnd() && (text_[pos_] == 'b' || text_[pos_] == 'f')) {
        adornment += text_[pos_++];
      }
      LIMCAP_ASSIGN_OR_RETURN(BindingPattern pattern,
                              BindingPattern::Parse(adornment));
      templates.push_back(std::move(pattern));
      SkipTrivia();
      if (ConsumeIf("|")) continue;
      if (ConsumeIf("]")) break;
      return Error("expected '|' or ']' in adornment list");
    }

    LIMCAP_ASSIGN_OR_RETURN(relational::Schema schema,
                            relational::Schema::Make(attributes));
    LIMCAP_ASSIGN_OR_RETURN(
        SourceView view,
        SourceView::Make(name, std::move(schema), std::move(templates)));

    SkipTrivia();
    if (!ConsumeIf("{")) return Error("expected '{' before tuples");
    relational::Relation data(view.schema());
    SkipTrivia();
    while (!ConsumeIf("}")) {
      if (!ConsumeIf("(")) return Error("expected '(' to start a tuple");
      relational::Row row;
      SkipTrivia();
      while (!ConsumeIf(")")) {
        LIMCAP_ASSIGN_OR_RETURN(Value value, ParseValue());
        row.push_back(std::move(value));
        SkipTrivia();
        if (ConsumeIf(",")) SkipTrivia();
      }
      if (row.size() != view.schema().arity()) {
        return Error("tuple arity " + std::to_string(row.size()) +
                     " != schema arity of " + name);
      }
      data.InsertUnsafe(std::move(row));
      SkipTrivia();
      if (ConsumeIf(",")) SkipTrivia();
    }

    parsed->views.push_back(view);
    LIMCAP_ASSIGN_OR_RETURN(InMemorySource source,
                            InMemorySource::Make(view, std::move(data)));
    return parsed->catalog.Register(
        std::make_unique<InMemorySource>(std::move(source)));
  }

  Result<Value> ParseValue() {
    if (AtEnd()) return Error("expected value");
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (!AtEnd() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out += text_[pos_++];
      }
      if (AtEnd()) return Error("unterminated string");
      ++pos_;
      return Value::String(std::move(out));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      bool is_double = false;
      if (!AtEnd() && text_[pos_] == '.' && pos_ + 1 < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        is_double = true;
        ++pos_;
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
      std::string token(text_.substr(start, pos_ - start));
      if (is_double) {
        return Value::Double(std::strtod(token.c_str(), nullptr));
      }
      return Value::Int64(std::strtoll(token.c_str(), nullptr, 10));
    }
    LIMCAP_ASSIGN_OR_RETURN(std::string identifier, ParseIdentifier());
    return Value::String(std::move(identifier));
  }

  Result<std::string> ParseIdentifier() {
    if (AtEnd() || !(std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
                     text_[pos_] == '_' || text_[pos_] == '$')) {
      return Error("expected identifier");
    }
    std::size_t start = pos_;
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '$')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipTrivia() {
    while (!AtEnd()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  bool ConsumeIf(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  Status Error(std::string message) const {
    return Status::InvalidArgument(message + " at line " +
                                   std::to_string(line_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

/// Renders a value in a form ParseValue reads back: bare identifiers stay
/// bare, everything else is quoted (ints/doubles stay literal).
std::string RenderValue(const Value& value) {
  if (!value.is_string()) return value.ToString();
  const std::string& text = value.str();
  bool bare = !text.empty() &&
              (std::isalpha(static_cast<unsigned char>(text[0])) ||
               text[0] == '_');
  for (char c : text) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$')) {
      bare = false;
    }
  }
  if (bare) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Result<ParsedCatalog> ParseCatalog(std::string_view text) {
  return Parser(text).Parse();
}

Result<std::string> CatalogToText(const SourceCatalog& catalog) {
  std::string out;
  for (const std::string& name : catalog.ViewNames()) {
    LIMCAP_ASSIGN_OR_RETURN(Source * source, catalog.Find(name));
    auto* in_memory = dynamic_cast<InMemorySource*>(source);
    if (in_memory == nullptr) {
      return Status::Unsupported("source " + name +
                                 " is not an InMemorySource");
    }
    const SourceView& view = in_memory->view();
    out += "source " + name + "(" +
           Join(view.schema().attributes(), ", ") + ") [" +
           JoinMapped(view.templates(), "|",
                      [](const BindingPattern& p) { return p.ToString(); }) +
           "] {\n";
    for (const relational::Row& row : in_memory->data().SortedRows()) {
      out += "  (" +
             JoinMapped(row, ", ",
                        [](const Value& v) { return RenderValue(v); }) +
             ")\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace limcap::capability
