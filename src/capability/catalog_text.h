#ifndef LIMCAP_CAPABILITY_CATALOG_TEXT_H_
#define LIMCAP_CAPABILITY_CATALOG_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

#include "capability/source_catalog.h"
#include "common/result.h"

namespace limcap::capability {

/// A catalog parsed from text, with live in-memory sources.
struct ParsedCatalog {
  SourceCatalog catalog;
  std::vector<SourceView> views;
};

/// Parses the catalog description language:
///
///   % Example 2.1's first two sources
///   source v1(Song, Cd) [bf] {
///     (t1, c1)
///     (t2, c3)
///   }
///   source v4(Cd, Artist, Price) [fbf] { (c1, a1, "$13") }
///   source book(Author, Title, Price) [bff|fbf] {}   % multi-template
///
/// Attribute names are identifiers; adornments are '|'-separated b/f
/// strings; tuple values are identifiers (strings), integer or floating
/// literals, or quoted strings. '%' and '//' start comments. Every view
/// is registered as an InMemorySource holding its tuples.
Result<ParsedCatalog> ParseCatalog(std::string_view text);

/// Serializes a catalog of InMemorySources back to the text format
/// (round-trips with ParseCatalog). Fails on non-InMemory sources.
Result<std::string> CatalogToText(const SourceCatalog& catalog);

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_CATALOG_TEXT_H_
