#ifndef LIMCAP_CAPABILITY_ACCESS_LOG_H_
#define LIMCAP_CAPABILITY_ACCESS_LOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "capability/source.h"
#include "relational/relation.h"

namespace limcap::capability {

/// One recorded source access — a row of the paper's Table 2.
///
/// Records are interned: the query and returned tuples are kept as
/// session-dictionary ids, and the paper-notation strings are rendered
/// only when asked for (or eagerly when the log's eager_render flag is
/// on), so logging on the execution hot path formats nothing. The
/// `rendered_*` string fields are overrides: a non-empty value (set by
/// hand-built records in tests, or by eager rendering) is returned as-is.
struct AccessRecord {
  std::string source;                ///< view name, e.g. "v1"
  SourceQuery query;                 ///< the bindings sent (interned)
  /// View for lazy rendering; records own a shared copy because logs
  /// outlive the execution that produced them.
  std::shared_ptr<const SourceView> view;
  std::string rendered_query;        ///< override; empty → render from ids
  std::size_t tuples_returned = 0;
  std::size_t new_tuples = 0;        ///< tuples not previously obtained
  /// New tuples as session-dictionary id rows, in the view's schema.
  std::vector<relational::IdRow> returned_ids;
  std::vector<std::string> returned_rendered;  ///< override; empty → ids
  /// New bindings as (attribute, session id) pairs.
  std::vector<std::pair<std::string, ValueId>> new_binding_ids;
  std::vector<std::string> new_bindings;       ///< override; empty → ids
  /// Error message when the source failed to answer (empty on success).
  std::string error;
  /// Fetch-evaluate round in which the query was issued (0-based);
  /// queries within one round depend only on earlier rounds' results, so
  /// they could be issued concurrently (see exec::EstimateMakespan).
  std::size_t round = 0;

  /// "v1(t1, C)" (paper notation).
  std::string RenderedQuery() const;
  /// "<t1, c1>" per new tuple.
  std::vector<std::string> ReturnedRendered() const;
  /// "Cd = c1" style notes.
  std::vector<std::string> NewBindings() const;
};

/// Collects per-source access statistics and the full query trace. The
/// execution engine writes one record per source query; benches read the
/// counters to compare plans by their dominant cost (source accesses).
class AccessLog {
 public:
  void Record(AccessRecord record);

  /// When set, Record renders every string field at record time (useful
  /// when the session dictionary will not outlive the log's readers, or
  /// for verbose tracing). Off by default: strings render on demand.
  void set_eager_render(bool eager) { eager_render_ = eager; }
  bool eager_render() const { return eager_render_; }

  const std::vector<AccessRecord>& records() const { return records_; }
  std::size_t total_queries() const { return records_.size(); }
  std::size_t QueriesTo(const std::string& source) const;
  /// Queries that returned at least one tuple.
  std::size_t productive_queries() const;
  /// Queries the source failed to answer.
  std::size_t failed_queries() const;
  std::size_t total_tuples_returned() const;

  /// Per-source query counts, sorted by source name.
  std::vector<std::pair<std::string, std::size_t>> PerSourceCounts() const;

  /// Renders the trace in the shape of the paper's Table 2
  /// (Order | Source Query | Returned Tuple(s) | New Binding(s)).
  /// When `productive_only` is set, rows with no returned tuples are
  /// elided as the paper does.
  std::string ToTable(bool productive_only) const;

  void Clear() { records_.clear(); }

 private:
  std::vector<AccessRecord> records_;
  bool eager_render_ = false;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_ACCESS_LOG_H_
