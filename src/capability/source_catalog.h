#ifndef LIMCAP_CAPABILITY_SOURCE_CATALOG_H_
#define LIMCAP_CAPABILITY_SOURCE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "capability/catalog_fingerprint.h"
#include "capability/source.h"
#include "common/result.h"

namespace limcap::capability {

/// The integration system's registry of sources: `V`, the source views
/// with their adornments, each backed by a live Source. Views are kept in
/// registration order (the paper indexes them v1..vn).
class SourceCatalog {
 public:
  SourceCatalog() = default;

  SourceCatalog(const SourceCatalog&) = delete;
  SourceCatalog& operator=(const SourceCatalog&) = delete;
  SourceCatalog(SourceCatalog&&) = default;
  SourceCatalog& operator=(SourceCatalog&&) = default;

  /// Registers a source; fails when a view with the same name exists.
  Status Register(std::unique_ptr<Source> source);

  /// Aborting convenience used by static catalogs and tests.
  void RegisterUnsafe(std::unique_ptr<Source> source);

  /// Removes a source — a source leaving a dynamic catalog. Later views
  /// shift down one registration slot, so the fingerprint below changes
  /// even when the removed view contributed nothing to a plan (rule order
  /// of generated programs depends on view order). Fails when no view of
  /// that name is registered.
  Status Deregister(const std::string& name);

  /// Fingerprint of the catalog's capability surface (view names,
  /// schemas, adornments — not extents), maintained incrementally:
  /// Register is O(1), Deregister recomputes (rare, O(n)). Equal
  /// fingerprints mean plans compiled against one catalog are valid
  /// against the other; any join/leave/capability change moves it. This
  /// is the catalog half of the plan-cache key.
  uint64_t fingerprint() const { return fingerprint_; }

  std::size_t size() const { return sources_.size(); }

  /// Views in registration order.
  std::vector<SourceView> Views() const;
  /// View names in registration order.
  std::vector<std::string> ViewNames() const;

  bool Contains(const std::string& name) const {
    return by_name_.count(name) > 0;
  }

  Result<Source*> Find(const std::string& name) const;
  Result<const SourceView*> FindView(const std::string& name) const;

  /// A(V): the union of every view's attributes.
  AttributeSet AllAttributes() const;

  /// One line per view: "v1(Song, Cd) [bf]".
  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<Source>> sources_;
  std::unordered_map<std::string, std::size_t> by_name_;
  uint64_t fingerprint_ = kEmptyCatalogFingerprint;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_SOURCE_CATALOG_H_
