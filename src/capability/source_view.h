#ifndef LIMCAP_CAPABILITY_SOURCE_VIEW_H_
#define LIMCAP_CAPABILITY_SOURCE_VIEW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "capability/binding_pattern.h"
#include "common/result.h"
#include "common/value.h"
#include "relational/schema.h"

namespace limcap::capability {

/// A set of global attribute names — the currency of the paper's closure
/// computations (f-closure, kernels, backward-closure).
using AttributeSet = std::set<std::string>;

/// A source view: a name, a relational schema over global attributes, and
/// one or more adorned templates (binding patterns) describing the query
/// forms the source accepts (paper Section 2.1). `v_i` stands for both
/// the view and its adorned template(s), as in the paper.
///
/// The paper assumes a single template per view "for simplicity of
/// exposition"; real sources (its amazon.com example accepts any of ISBN,
/// author, or title) offer several. limcap supports the general case: a
/// query is executable when it satisfies at least one template. All
/// single-template accessors (`pattern()`, `BoundAttributes()`, ...)
/// refer to the primary (first) template.
class SourceView {
 public:
  SourceView() = default;

  /// Fails when the pattern arity differs from the schema arity.
  static Result<SourceView> Make(std::string name, relational::Schema schema,
                                 BindingPattern pattern);

  /// Multi-template constructor; requires at least one template, each of
  /// the schema's arity, no duplicates, and no template whose bound set
  /// is a superset of another's (it would be redundant: any query
  /// satisfying it satisfies the weaker one).
  static Result<SourceView> Make(std::string name, relational::Schema schema,
                                 std::vector<BindingPattern> templates);

  /// Convenience from attribute names and adornment text, e.g.
  /// Make("v3", {"Cd", "Artist", "Price"}, "bff"). Aborts on bad input.
  static SourceView MakeUnsafe(std::string name,
                               std::vector<std::string> attributes,
                               std::string_view pattern);

  /// Multi-template convenience: MakeUnsafe("b", {...}, {"bff", "fbf"}).
  static SourceView MakeUnsafe(std::string name,
                               std::vector<std::string> attributes,
                               std::vector<std::string> patterns);

  const std::string& name() const { return name_; }
  const relational::Schema& schema() const { return schema_; }

  /// The primary (first) template.
  const BindingPattern& pattern() const { return templates_.front(); }
  const std::vector<BindingPattern>& templates() const { return templates_; }
  bool has_multiple_templates() const { return templates_.size() > 1; }

  /// A(v): all attributes.
  AttributeSet Attributes() const;
  /// B(v) of the primary template: attributes that must be bound.
  AttributeSet BoundAttributes() const;
  /// F(v) of the primary template: attributes that may be free.
  AttributeSet FreeAttributes() const;
  /// B / F of a specific template.
  AttributeSet BoundAttributes(std::size_t template_index) const;
  AttributeSet FreeAttributes(std::size_t template_index) const;

  /// True when a query binding exactly the attributes in `bound` (or a
  /// superset) satisfies some template's requirements.
  bool RequirementsSatisfiedBy(const AttributeSet& bound) const;

  /// Index of the first template whose requirements `bound` satisfies,
  /// or nullopt.
  std::optional<std::size_t> SatisfiedTemplate(const AttributeSet& bound) const;

  /// "v3(Cd, Artist, Price) [bff]" / "b(Author, Title, Price) [bff|fbf]".
  std::string ToString() const;

  /// Renders a source query in the paper's notation, e.g. "v3(c1, A, P)":
  /// bound attributes show their value, free attributes show the
  /// attribute's first letter as a variable.
  std::string FormatQuery(const std::map<std::string, Value>& bindings) const;

 private:
  SourceView(std::string name, relational::Schema schema,
             std::vector<BindingPattern> templates)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        templates_(std::move(templates)) {}

  std::string name_;
  relational::Schema schema_;
  std::vector<BindingPattern> templates_;
};

}  // namespace limcap::capability

#endif  // LIMCAP_CAPABILITY_SOURCE_VIEW_H_
