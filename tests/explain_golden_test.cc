// Golden-file tests for limcap_explain's report: each paper example is
// explained (via the exec::Explain library the CLI wraps) with
// wall-clock timing off, and the rendered text is compared byte-for-byte
// with a checked-in expectation. Everything in that report is
// deterministic — plan, program, Table-2 access log, simulated times,
// counters — so any diff is a real behavior change. Regenerate all of
// them in place with
//
//   LIMCAP_REGEN_GOLDEN=1 build/tests/explain_golden_test
//
// (equivalently, pipe `build/tools/limcap_explain --no-timing` by hand;
// the adaptive golden adds `--adaptive`).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exec/explain.h"
#include "obs/export.h"

#ifndef LIMCAP_GOLDEN_DIR
#error "LIMCAP_GOLDEN_DIR must be defined by the build"
#endif
#ifndef LIMCAP_EXAMPLES_DIR
#error "LIMCAP_EXAMPLES_DIR must be defined by the build"
#endif

namespace limcap::exec {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string Golden(const std::string& name) {
  return std::string(LIMCAP_GOLDEN_DIR) + "/" + name;
}

std::string Example(const std::string& name) {
  return std::string(LIMCAP_EXAMPLES_DIR) + "/" + name;
}

Result<ExplainReport> ExplainExample(const std::string& stem,
                                     bool adaptive = false) {
  ExplainRequest request;
  request.catalog_text = ReadFile(Example(stem + ".cat"));
  request.query_text = ReadFile(Example(stem + ".q"));
  request.include_timing = false;
  request.options.runtime.adaptive.enabled = adaptive;
  return Explain(request);
}

/// Byte-for-byte comparison against tests/golden/<name>; with
/// LIMCAP_REGEN_GOLDEN set, rewrites the golden instead and skips.
void ExpectGoldenText(const std::string& rendered, const std::string& name) {
  const std::string golden_path = Golden(name);
  if (std::getenv("LIMCAP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  EXPECT_EQ(rendered, ReadFile(golden_path))
      << "regenerate with LIMCAP_REGEN_GOLDEN=1 build/tests/"
         "explain_golden_test";
}

void ExpectExplainGolden(const std::string& stem, bool adaptive = false) {
  auto report = ExplainExample(stem, adaptive);
  ASSERT_TRUE(report.ok()) << report.status();
  ExpectGoldenText(report->rendered,
                   "explain_" + stem + (adaptive ? "_adaptive" : "") +
                       ".out");
}

TEST(ExplainGoldenTest, Example21) { ExpectExplainGolden("example21"); }
TEST(ExplainGoldenTest, Example41) { ExpectExplainGolden("example41"); }
TEST(ExplainGoldenTest, Example51) { ExpectExplainGolden("example51"); }
TEST(ExplainGoldenTest, Example52) { ExpectExplainGolden("example52"); }

// The adaptive report: same plan and answer, plus the "Adaptive
// dispatch" section (skip certificates, learned per-source profiles).
TEST(ExplainGoldenTest, Example21Adaptive) {
  ExpectExplainGolden("example21", /*adaptive=*/true);
}

// Adaptive explain is deterministic end-to-end: two runs render
// byte-identical reports (the wall for --no-timing adaptive output).
TEST(ExplainGoldenTest, AdaptiveExplainIsDeterministic) {
  auto first = ExplainExample("example41", /*adaptive=*/true);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = ExplainExample("example41", /*adaptive=*/true);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->rendered, second->rendered);
  EXPECT_NE(first->rendered.find("Adaptive dispatch"), std::string::npos);
  EXPECT_NE(first->rendered.find("skipped (dynamic relevance)"),
            std::string::npos);
  // And the non-adaptive report says the layer is off.
  auto plain = ExplainExample("example41");
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(plain->rendered.find("== Adaptive dispatch ==\noff"),
            std::string::npos);
}

TEST(ExplainGoldenTest, ChromeTraceIsSaneJson) {
  auto report = ExplainExample("example21");
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string& json = report->chrome_trace;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"answer\""), std::string::npos);
  EXPECT_NE(json.find("\"fetch.batch\""), std::string::npos);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ExplainGoldenTest, RuntimeConfigThreadsThrough) {
  ExplainRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.query_text = ReadFile(Example("example21.q"));
  request.runtime_text = ReadFile(Example("example21.runtime"));
  request.include_timing = false;
  auto report = Explain(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->answer.exec.answer.size(), 3u);
}

TEST(ExplainGoldenTest, UnparsableInputsAreInvalidArgument) {
  ExplainRequest request;
  request.catalog_text = "this is not a catalog";
  request.query_text = "nor a query";
  auto report = Explain(request);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace limcap::exec
