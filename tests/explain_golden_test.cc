// Golden-file tests for limcap_explain's report: each paper example is
// explained (via the exec::Explain library the CLI wraps) with
// wall-clock timing off, and the rendered text is compared byte-for-byte
// with a checked-in expectation. Everything in that report is
// deterministic — plan, program, Table-2 access log, simulated times,
// counters — so any diff is a real behavior change. Regenerate with
//
//   build/tools/limcap_explain --no-timing
//       --catalog examples/catalogs/example21.cat
//       --query examples/catalogs/example21.q
//       > tests/golden/explain_example21.out     (one line)

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exec/explain.h"
#include "obs/export.h"

#ifndef LIMCAP_GOLDEN_DIR
#error "LIMCAP_GOLDEN_DIR must be defined by the build"
#endif
#ifndef LIMCAP_EXAMPLES_DIR
#error "LIMCAP_EXAMPLES_DIR must be defined by the build"
#endif

namespace limcap::exec {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string Golden(const std::string& name) {
  return std::string(LIMCAP_GOLDEN_DIR) + "/" + name;
}

std::string Example(const std::string& name) {
  return std::string(LIMCAP_EXAMPLES_DIR) + "/" + name;
}

Result<ExplainReport> ExplainExample(const std::string& stem) {
  ExplainRequest request;
  request.catalog_text = ReadFile(Example(stem + ".cat"));
  request.query_text = ReadFile(Example(stem + ".q"));
  request.include_timing = false;
  return Explain(request);
}

void ExpectExplainGolden(const std::string& stem) {
  auto report = ExplainExample(stem);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rendered, ReadFile(Golden("explain_" + stem + ".out")))
      << "regenerate with limcap_explain --no-timing (see file header)";
}

TEST(ExplainGoldenTest, Example21) { ExpectExplainGolden("example21"); }
TEST(ExplainGoldenTest, Example41) { ExpectExplainGolden("example41"); }
TEST(ExplainGoldenTest, Example51) { ExpectExplainGolden("example51"); }
TEST(ExplainGoldenTest, Example52) { ExpectExplainGolden("example52"); }

TEST(ExplainGoldenTest, ChromeTraceIsSaneJson) {
  auto report = ExplainExample("example21");
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string& json = report->chrome_trace;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"answer\""), std::string::npos);
  EXPECT_NE(json.find("\"fetch.batch\""), std::string::npos);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ExplainGoldenTest, RuntimeConfigThreadsThrough) {
  ExplainRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.query_text = ReadFile(Example("example21.q"));
  request.runtime_text = ReadFile(Example("example21.runtime"));
  request.include_timing = false;
  auto report = Explain(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->answer.exec.answer.size(), 3u);
}

TEST(ExplainGoldenTest, UnparsableInputsAreInvalidArgument) {
  ExplainRequest request;
  request.catalog_text = "this is not a catalog";
  request.query_text = "nor a query";
  auto report = Explain(request);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace limcap::exec
