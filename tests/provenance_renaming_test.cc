#include <gtest/gtest.h>

#include <memory>

#include "capability/in_memory_source.h"
#include "capability/renaming_source.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap {
namespace {

using capability::InMemorySource;
using capability::RenamingSource;
using capability::SourceCatalog;
using capability::SourceQuery;
using capability::SourceView;
using relational::Relation;

Value S(const char* text) { return Value::String(text); }

TEST(PerConnectionAnswersTest, Example21Provenance) {
  // Which of the four joins produced each price?
  auto example = paperdata::MakeExample21();
  exec::ExecOptions options;
  options.builder.per_connection_goals = true;
  exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.answer.size(), 3u);  // provenance adds no answers

  auto per_connection = exec::PerConnectionAnswers(
      report->exec, report->plan.relevance.queryable_connections,
      example.query, options.builder);
  ASSERT_TRUE(per_connection.ok()) << per_connection.status();
  ASSERT_EQ(per_connection->size(), 4u);
  // $15 from v1⋈v3, $13 from v1⋈v4, $10 from v2⋈v4, nothing from v2⋈v3.
  EXPECT_TRUE(per_connection->at("{v1, v3}").Contains({S("$15")}));
  EXPECT_EQ(per_connection->at("{v1, v3}").size(), 1u);
  EXPECT_TRUE(per_connection->at("{v1, v4}").Contains({S("$13")}));
  EXPECT_TRUE(per_connection->at("{v2, v4}").Contains({S("$10")}));
  EXPECT_TRUE(per_connection->at("{v2, v3}").empty());
  // The union of the per-connection answers is the answer.
  std::size_t total = 0;
  relational::Relation united(report->exec.answer.schema());
  for (const auto& [name, relation] : *per_connection) {
    total += relation.size();
    for (const auto& row : relation.DecodedRows()) united.InsertUnsafe(row);
  }
  EXPECT_GE(total, report->exec.answer.size());
  EXPECT_TRUE(united == report->exec.answer);
}

TEST(PerConnectionAnswersTest, DisabledByDefault) {
  auto example = paperdata::MakeExample21();
  exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok());
  auto per_connection = exec::PerConnectionAnswers(
      report->exec, report->plan.relevance.queryable_connections,
      example.query);
  // Without the option the tagged predicates never exist: all empty.
  ASSERT_TRUE(per_connection.ok());
  for (const auto& [name, relation] : *per_connection) {
    EXPECT_TRUE(relation.empty());
  }
}

TEST(RenamingSourceTest, TranslatesQueriesAndSchemas) {
  // A source speaking its own vocabulary: werk(Titel, Preis) [bf].
  SourceView local = SourceView::MakeUnsafe("werk", {"Titel", "Preis"}, "bf");
  Relation data(local.schema());
  data.InsertUnsafe({S("faust"), S("12")});
  data.InsertUnsafe({S("woyzeck"), S("9")});
  auto renamed = RenamingSource::Make(
      std::make_unique<InMemorySource>(
          InMemorySource::MakeUnsafe(local, std::move(data))),
      {{"Titel", "Title"}, {"Preis", "Price"}}, "books_de");
  ASSERT_TRUE(renamed.ok()) << renamed.status();
  EXPECT_EQ(renamed->view().ToString(), "books_de(Title, Price) [bf]");

  auto dict = std::make_shared<ValueDictionary>();
  auto result = renamed->Execute(SourceQuery::MakeUnsafe(
      renamed->view(), dict, {{"Title", S("faust")}}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({S("faust"), S("12")}));
  EXPECT_EQ(result->schema().attributes(),
            (std::vector<std::string>{"Title", "Price"}));
  // Capability enforcement passes through.
  EXPECT_FALSE(
      renamed->Execute(SourceQuery::MakeUnsafe(renamed->view(), dict, {}))
          .ok());
  // Unknown (old) attribute names are rejected when the query is built
  // against the wrapper's exported (global) schema.
  EXPECT_FALSE(
      SourceQuery::Make(renamed->view(), dict, {{"Titel", S("faust")}}).ok());
}

TEST(RenamingSourceTest, RejectsCollidingRenames) {
  SourceView local = SourceView::MakeUnsafe("w", {"A", "B"}, "bf");
  Relation data(local.schema());
  auto bad = RenamingSource::Make(
      std::make_unique<InMemorySource>(
          InMemorySource::MakeUnsafe(local, std::move(data))),
      {{"A", "X"}, {"B", "X"}});
  EXPECT_FALSE(bad.ok());
}

TEST(RenamingSourceTest, IntegratesIntoCatalog) {
  // Two bookstores with different vocabularies, unified by wrappers and
  // joined through the shared global attribute Title.
  SourceCatalog catalog;
  SourceView en = SourceView::MakeUnsafe("en", {"Title", "PriceUS"}, "bf");
  Relation en_data(en.schema());
  en_data.InsertUnsafe({S("faust"), S("14")});
  catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(en, std::move(en_data))));

  SourceView de = SourceView::MakeUnsafe("werk", {"Titel", "Preis"}, "bf");
  Relation de_data(de.schema());
  de_data.InsertUnsafe({S("faust"), S("12")});
  auto wrapped = RenamingSource::Make(
      std::make_unique<InMemorySource>(
          InMemorySource::MakeUnsafe(de, std::move(de_data))),
      {{"Titel", "Title"}, {"Preis", "PriceDE"}}, "de");
  ASSERT_TRUE(wrapped.ok());
  catalog.RegisterUnsafe(
      std::make_unique<RenamingSource>(std::move(wrapped).value()));

  planner::Query query({{"Title", S("faust")}}, {"PriceUS", "PriceDE"},
                       {planner::Connection({"en", "de"})});
  exec::QueryAnswerer answerer(&catalog, planner::DomainMap());
  auto report = answerer.Answer(query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.answer.size(), 1u);
  EXPECT_TRUE(report->exec.answer.Contains({S("14"), S("12")}));
}

}  // namespace
}  // namespace limcap
