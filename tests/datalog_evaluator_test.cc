#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "datalog/evaluator.h"
#include "datalog/fact_store.h"
#include "datalog/parser.h"

namespace limcap::datalog {
namespace {

Value S(const std::string& text) { return Value::String(text); }

Program P(const char* text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return program.value_or(Program{});
}

/// Options used throughout: an explicit worker count so the parallel mode
/// exercises a real pool even on single-core CI runners (serial modes
/// ignore the field).
Evaluator::Options Opts(Evaluator::Mode mode) {
  Evaluator::Options options;
  options.mode = mode;
  options.num_threads = 4;
  return options;
}

Result<std::unique_ptr<Evaluator>> Make(const Program& program,
                                        FactStore* store,
                                        Evaluator::Mode mode) {
  return Evaluator::Create(program, store, Opts(mode));
}

/// Runs `program` over a copy of the EDB facts and returns the facts of
/// `predicate` as a sorted set of decoded rows.
std::set<std::vector<Value>> Eval(
    const Program& program,
    const std::vector<std::pair<std::string, relational::Row>>& edb,
    const std::string& predicate, Evaluator::Mode mode) {
  FactStore store;
  for (const auto& [name, row] : edb) {
    EXPECT_TRUE(store.Insert(name, row).ok());
  }
  auto evaluator = Make(program, &store, mode);
  EXPECT_TRUE(evaluator.ok()) << evaluator.status();
  EXPECT_TRUE((*evaluator)->Run().ok());
  std::set<std::vector<Value>> out;
  for (RowView row : store.Facts(predicate)) {
    out.insert(store.Decode(row));
  }
  return out;
}

/// Every predicate's facts in insertion order — the bit-exact shape used
/// by the determinism tests (a set comparison would hide order drift).
std::vector<std::pair<std::string, std::vector<relational::Row>>> Dump(
    const FactStore& store) {
  std::vector<std::pair<std::string, std::vector<relational::Row>>> out;
  for (const std::string& name : store.Predicates()) {
    std::vector<relational::Row> rows;
    for (RowView row : store.Facts(name)) {
      rows.push_back(store.Decode(row));
    }
    out.emplace_back(name, std::move(rows));
  }
  return out;
}

TEST(FactStoreTest, InsertAndCount) {
  FactStore store;
  EXPECT_TRUE(*store.Insert("p", {S("a"), S("b")}));
  EXPECT_FALSE(*store.Insert("p", {S("a"), S("b")}));
  EXPECT_TRUE(*store.Insert("p", {S("a"), S("c")}));
  EXPECT_EQ(store.Count("p"), 2u);
  EXPECT_EQ(store.Count("q"), 0u);
  EXPECT_EQ(store.TotalCount(), 2u);
}

TEST(FactStoreTest, ArityConflictRejected) {
  FactStore store;
  ASSERT_TRUE(store.Insert("p", {S("a")}).ok());
  EXPECT_FALSE(store.Insert("p", {S("a"), S("b")}).ok());
  EXPECT_FALSE(store.Declare("p", 3).ok());
  EXPECT_TRUE(store.Declare("p", 1).ok());
}

TEST(FactStoreTest, ProbeWithLimit) {
  FactStore store;
  ValueId a = store.dict().Intern(S("a"));
  ASSERT_TRUE(store.Insert("p", {S("a"), S("x")}).ok());
  ASSERT_TRUE(store.Insert("p", {S("a"), S("y")}).ok());
  ASSERT_TRUE(store.Insert("p", {S("b"), S("z")}).ok());
  EXPECT_EQ(store.Probe("p", {0}, {a}, 3).size(), 2u);
  EXPECT_EQ(store.Probe("p", {0}, {a}, 1).size(), 1u);
  EXPECT_EQ(store.Probe("p", {0}, {a}, 0).size(), 0u);
  // Index maintained across later inserts.
  ASSERT_TRUE(store.Insert("p", {S("a"), S("w")}).ok());
  EXPECT_EQ(store.Probe("p", {0}, {a}, 4).size(), 3u);
}

TEST(FactStoreTest, ToRelationDecodes) {
  FactStore store;
  ASSERT_TRUE(store.Insert("p", {S("a"), Value::Int64(1)}).ok());
  auto relation =
      store.ToRelation("p", relational::Schema::MakeUnsafe({"X", "Y"}));
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->Contains({S("a"), Value::Int64(1)}));
  EXPECT_FALSE(
      store.ToRelation("p", relational::Schema::MakeUnsafe({"X"})).ok());
  // Unknown predicate: empty relation of the given schema.
  auto empty =
      store.ToRelation("zzz", relational::Schema::MakeUnsafe({"X"}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

class EvaluatorModes : public ::testing::TestWithParam<Evaluator::Mode> {};

TEST_P(EvaluatorModes, SingleRuleJoin) {
  Program program = P("ans(X, Z) :- e(X, Y), e(Y, Z).");
  auto result = Eval(program,
                     {{"e", {S("a"), S("b")}}, {"e", {S("b"), S("c")}}},
                     "ans", GetParam());
  EXPECT_EQ(result,
            (std::set<std::vector<Value>>{{S("a"), S("c")}}));
}

TEST_P(EvaluatorModes, TransitiveClosure) {
  Program program = P(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), e(Y, Z).\n");
  std::vector<std::pair<std::string, relational::Row>> edb;
  const int n = 12;
  for (int i = 0; i < n - 1; ++i) {
    edb.push_back({"e", {S("n" + std::to_string(i)),
                         S("n" + std::to_string(i + 1))}});
  }
  auto result = Eval(program, edb, "tc", GetParam());
  EXPECT_EQ(result.size(), static_cast<std::size_t>(n * (n - 1) / 2));
}

TEST_P(EvaluatorModes, GroundFactsSeeded) {
  Program program = P(
      "p(a).\n"
      "p(b).\n"
      "q(X) :- p(X).\n");
  auto result = Eval(program, {}, "q", GetParam());
  EXPECT_EQ(result.size(), 2u);
}

TEST_P(EvaluatorModes, ConstantsInBodyFilter) {
  Program program = P("ans(Y) :- e(a, Y).");
  auto result = Eval(program,
                     {{"e", {S("a"), S("x")}}, {"e", {S("b"), S("y")}}},
                     "ans", GetParam());
  EXPECT_EQ(result, (std::set<std::vector<Value>>{{S("x")}}));
}

TEST_P(EvaluatorModes, RepeatedVariableInAtom) {
  Program program = P("loop(X) :- e(X, X).");
  auto result = Eval(program,
                     {{"e", {S("a"), S("a")}}, {"e", {S("a"), S("b")}}},
                     "loop", GetParam());
  EXPECT_EQ(result, (std::set<std::vector<Value>>{{S("a")}}));
}

TEST_P(EvaluatorModes, ConstantInHead) {
  Program program = P("tagged(marker, X) :- e(X, Y).");
  auto result = Eval(program, {{"e", {S("a"), S("b")}}}, "tagged",
                     GetParam());
  EXPECT_EQ(result,
            (std::set<std::vector<Value>>{{S("marker"), S("a")}}));
}

TEST_P(EvaluatorModes, MutualRecursion) {
  Program program = P(
      "even(s0).\n"
      "odd(Y) :- succ(X, Y), even(X).\n"
      "even(Y) :- succ(X, Y), odd(X).\n");
  std::vector<std::pair<std::string, relational::Row>> edb;
  for (int i = 0; i < 6; ++i) {
    edb.push_back({"succ", {S("s" + std::to_string(i)),
                            S("s" + std::to_string(i + 1))}});
  }
  auto even = Eval(program, edb, "even", GetParam());
  auto odd = Eval(program, edb, "odd", GetParam());
  EXPECT_EQ(even.size(), 4u);  // s0, s2, s4, s6
  EXPECT_EQ(odd.size(), 3u);   // s1, s3, s5
}

TEST_P(EvaluatorModes, UnsafeProgramRejected) {
  Program program = P("p(X) :- q(Y).");
  FactStore store;
  EXPECT_FALSE(Make(program, &store, GetParam()).ok());
}

TEST_P(EvaluatorModes, EmptyProgramRuns) {
  FactStore store;
  auto evaluator = Make(Program{}, &store, GetParam());
  ASSERT_TRUE(evaluator.ok());
  EXPECT_TRUE((*evaluator)->Run().ok());
}

TEST_P(EvaluatorModes, ResumableAcrossEdbInserts) {
  Program program = P(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), e(X, Y).\n");
  FactStore store;
  ASSERT_TRUE(store.Insert("start", {S("a")}).ok());
  ASSERT_TRUE(store.Insert("e", {S("a"), S("b")}).ok());
  // Declare the EDB arity so later inserts agree.
  auto evaluator = Make(program, &store, GetParam());
  ASSERT_TRUE(evaluator.ok());
  ASSERT_TRUE((*evaluator)->Run().ok());
  EXPECT_EQ(store.Count("reach"), 2u);

  // New extensional facts arrive (as source queries would deliver them);
  // a further Run picks them up incrementally.
  ASSERT_TRUE(store.Insert("e", {S("b"), S("c")}).ok());
  ASSERT_TRUE(store.Insert("e", {S("c"), S("d")}).ok());
  ASSERT_TRUE((*evaluator)->Run().ok());
  EXPECT_EQ(store.Count("reach"), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EvaluatorModes,
    ::testing::Values(Evaluator::Mode::kNaive, Evaluator::Mode::kSemiNaive,
                      Evaluator::Mode::kParallelSemiNaive),
    [](const ::testing::TestParamInfo<Evaluator::Mode>& info) {
      switch (info.param) {
        case Evaluator::Mode::kNaive:
          return "Naive";
        case Evaluator::Mode::kSemiNaive:
          return "SemiNaive";
        case Evaluator::Mode::kParallelSemiNaive:
          return "ParallelSemiNaive";
      }
      return "Unknown";
    });

/// Semi-naive watermarks must make a resumed Run delta-driven: after the
/// fixpoint, extending a long chain by one edge may only reprocess the
/// new facts, not re-match the existing closure. Holds identically in the
/// serial and parallel modes.
class SemiNaiveResumability
    : public ::testing::TestWithParam<Evaluator::Mode> {};

TEST_P(SemiNaiveResumability, WatermarksReprocessOnlyNewFacts) {
  Program program = P(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), e(X, Y).\n");
  FactStore store;
  ASSERT_TRUE(store.Insert("start", {S("a0")}).ok());
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store
                    .Insert("e", {S("a" + std::to_string(i)),
                                  S("a" + std::to_string(i + 1))})
                    .ok());
  }
  auto evaluator = Make(program, &store, GetParam());
  ASSERT_TRUE(evaluator.ok());
  ASSERT_TRUE((*evaluator)->Run().ok());
  EXPECT_EQ(store.Count("reach"), static_cast<std::size_t>(n + 1));
  const EvalStats first = (*evaluator)->stats();
  EXPECT_GT(first.matches, static_cast<uint64_t>(n));

  // One new edge extends the chain; the resumed run derives exactly one
  // fact and its match work is O(delta), not O(closure).
  ASSERT_TRUE(store.Insert("e", {S("a" + std::to_string(n)),
                                 S("a" + std::to_string(n + 1))})
                  .ok());
  ASSERT_TRUE((*evaluator)->Run().ok());
  const EvalStats second = (*evaluator)->stats();
  EXPECT_EQ(store.Count("reach"), static_cast<std::size_t>(n + 2));
  EXPECT_EQ(second.facts_derived - first.facts_derived, 1u);
  EXPECT_LE(second.matches - first.matches, 4u);

  // A no-op resume (nothing inserted) must derive nothing.
  ASSERT_TRUE((*evaluator)->Run().ok());
  EXPECT_EQ((*evaluator)->stats().facts_derived, second.facts_derived);
}

INSTANTIATE_TEST_SUITE_P(
    SerialAndParallel, SemiNaiveResumability,
    ::testing::Values(Evaluator::Mode::kSemiNaive,
                      Evaluator::Mode::kParallelSemiNaive),
    [](const ::testing::TestParamInfo<Evaluator::Mode>& info) {
      return info.param == Evaluator::Mode::kSemiNaive ? "Serial"
                                                       : "Parallel";
    });

/// Parallel semi-naive must be deterministic: not just the same fact set
/// as serial, but the same facts in the same insertion order for every
/// predicate (merge happens in activation order at round barriers).
TEST(ParallelEvaluatorTest, BitIdenticalToSerialOnTransitiveClosure) {
  Program program = P(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), e(Y, Z).\n"
      "sym(Y, X) :- tc(X, Y).\n");
  auto build_edb = [](FactStore* store) {
    // A braided graph: chain plus skip edges, several divergent paths to
    // the same node so derivation order is actually contended.
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store
                      ->Insert("e", {S("v" + std::to_string(i)),
                                     S("v" + std::to_string(i + 1))})
                      .ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(store
                        ->Insert("e", {S("v" + std::to_string(i)),
                                       S("v" + std::to_string(i + 2))})
                        .ok());
      }
    }
  };
  FactStore serial_store;
  build_edb(&serial_store);
  auto serial = Make(program, &serial_store, Evaluator::Mode::kSemiNaive);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE((*serial)->Run().ok());

  FactStore parallel_store;
  build_edb(&parallel_store);
  auto parallel =
      Make(program, &parallel_store, Evaluator::Mode::kParallelSemiNaive);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE((*parallel)->Run().ok());

  EXPECT_GT((*parallel)->stats().threads_used, 1u);
  EXPECT_EQ(Dump(serial_store), Dump(parallel_store));
  EXPECT_EQ((*serial)->stats().facts_derived,
            (*parallel)->stats().facts_derived);
}

TEST(ParallelEvaluatorTest, StatsReportThreadsProbesAndRounds) {
  Program program = P(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), e(Y, Z).\n");
  FactStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .Insert("e", {S("n" + std::to_string(i)),
                                  S("n" + std::to_string(i + 1))})
                    .ok());
  }
  auto evaluator =
      Make(program, &store, Evaluator::Mode::kParallelSemiNaive);
  ASSERT_TRUE(evaluator.ok());
  ASSERT_TRUE((*evaluator)->Run().ok());
  const EvalStats& stats = (*evaluator)->stats();
  EXPECT_EQ(stats.threads_used, 4u);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.scratch_bytes, 0u);
  ASSERT_EQ(stats.round_activations.size(), stats.iterations);
  uint64_t total = 0;
  for (uint64_t a : stats.round_activations) total += a;
  EXPECT_EQ(total, stats.rule_activations);
}

TEST(EvaluatorStatsTest, SemiNaiveDoesLessWorkThanNaiveOnChains) {
  Program program = P(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), e(Y, Z).\n");
  const int n = 24;
  auto run = [&](Evaluator::Mode mode) {
    FactStore store;
    for (int i = 0; i < n - 1; ++i) {
      EXPECT_TRUE(store
                      .Insert("e", {S("n" + std::to_string(i)),
                                    S("n" + std::to_string(i + 1))})
                      .ok());
    }
    auto evaluator = Evaluator::Create(program, &store, mode);
    EXPECT_TRUE(evaluator.ok());
    EXPECT_TRUE((*evaluator)->Run().ok());
    return (*evaluator)->stats();
  };
  EvalStats naive = run(Evaluator::Mode::kNaive);
  EvalStats semi = run(Evaluator::Mode::kSemiNaive);
  EXPECT_EQ(naive.facts_derived, semi.facts_derived);
  // Naive re-derives every old fact each round; semi-naive must not.
  EXPECT_GT(naive.matches, semi.matches);
}

/// Random-program property: naive and semi-naive evaluation agree.
class RandomProgramAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramAgreement, NaiveEqualsSemiNaive) {
  Rng rng(GetParam());
  // Random positive program over binary predicates p0..p3 (IDB) and
  // e0..e2 (EDB), rules with 1-3 body atoms, safe by construction: head
  // variables drawn from body variables.
  const int num_idb = 4;
  const int num_edb = 3;
  Program program;
  const int num_rules = 3 + static_cast<int>(rng.Below(5));
  for (int r = 0; r < num_rules; ++r) {
    Rule rule;
    int body_size = 1 + static_cast<int>(rng.Below(3));
    std::vector<std::string> vars;
    for (int b = 0; b < body_size; ++b) {
      Atom atom;
      bool edb = rng.Chance(0.5) || b == 0;
      atom.predicate = edb ? "e" + std::to_string(rng.Below(num_edb))
                           : "p" + std::to_string(rng.Below(num_idb));
      for (int t = 0; t < 2; ++t) {
        // Reuse a variable sometimes to create joins.
        if (!vars.empty() && rng.Chance(0.5)) {
          atom.terms.push_back(Term::Var(vars[rng.Below(vars.size())]));
        } else {
          std::string name = "V" + std::to_string(vars.size());
          vars.push_back(name);
          atom.terms.push_back(Term::Var(name));
        }
      }
      rule.body.push_back(std::move(atom));
    }
    rule.head.predicate = "p" + std::to_string(rng.Below(num_idb));
    for (int t = 0; t < 2; ++t) {
      rule.head.terms.push_back(Term::Var(vars[rng.Below(vars.size())]));
    }
    program.AddRule(std::move(rule));
  }
  // Random EDB over a small constant pool.
  std::vector<std::pair<std::string, relational::Row>> edb;
  for (int e = 0; e < num_edb; ++e) {
    int facts = 2 + static_cast<int>(rng.Below(6));
    for (int f = 0; f < facts; ++f) {
      edb.push_back({"e" + std::to_string(e),
                     {S("k" + std::to_string(rng.Below(5))),
                      S("k" + std::to_string(rng.Below(5)))}});
    }
  }
  for (int p = 0; p < num_idb; ++p) {
    std::string name = "p" + std::to_string(p);
    auto naive = Eval(program, edb, name, Evaluator::Mode::kNaive);
    auto semi = Eval(program, edb, name, Evaluator::Mode::kSemiNaive);
    auto parallel =
        Eval(program, edb, name, Evaluator::Mode::kParallelSemiNaive);
    EXPECT_EQ(naive, semi) << "predicate " << name << " differs, seed "
                           << GetParam() << "\n"
                           << program.ToString();
    EXPECT_EQ(semi, parallel)
        << "parallel disagrees on " << name << ", seed " << GetParam()
        << "\n"
        << program.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramAgreement,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

}  // namespace
}  // namespace limcap::datalog
