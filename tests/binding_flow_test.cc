// The binding-flow abstract interpretation (analysis/binding_flow.h):
// reachable patterns, frontier depths, fetch bounds, relevance verdicts,
// and the machine-checkable certificates behind them.

#include "analysis/binding_flow.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "capability/catalog_text.h"
#include "datalog/parser.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap {
namespace {

using analysis::AbstractBinding;
using analysis::AnalyzeBindingFlow;
using analysis::BindingFlowOptions;
using analysis::BindingFlowResult;
using analysis::ChannelVerdict;
using analysis::Code;
using analysis::PruningCertificate;
using analysis::VerifyCertificate;
using analysis::WitnessStep;
using exec::ExecOptions;
using exec::QueryAnswerer;
using exec::StaticAnalysisMode;

/// A bind-join chain v1 -> v2 plus two bystanders: v3 is unreachable
/// (nothing populates domD), v4 is reachable off the chain's domB but
/// feeds only the dead-end predicate p.
constexpr const char* kChainCatalog = R"(
source v1(A, B) [bf] { (a0, b1) }
source v2(B, C) [bf] { (b1, c1) }
source v3(D, E) [bf] { (d1, e1) }
source v4(B, Z) [bf] { (b1, z1) }
)";

constexpr const char* kChainProgram = R"(
domA(a0).
domB(B) :- v1(A, B).
ans(C) :- v1(A, B), v2(B, C).
q(E) :- v3(D, E).
p(Z) :- v4(B, Z).
)";

const ChannelVerdict& ChannelOf(const BindingFlowResult& result,
                                const std::string& view) {
  for (const ChannelVerdict& verdict : result.channels) {
    if (verdict.view == view) return verdict;
  }
  ADD_FAILURE() << "no verdict for view " << view;
  static ChannelVerdict missing;
  return missing;
}

class BindingFlowChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = capability::ParseCatalog(kChainCatalog);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    views_ = parsed->views;
    auto program = datalog::ParseProgram(kChainProgram);
    ASSERT_TRUE(program.ok()) << program.status().message();
    program_ = *program;
    result_ = AnalyzeBindingFlow(program_, views_, domains_);
  }

  std::vector<capability::SourceView> views_;
  datalog::Program program_;
  planner::DomainMap domains_;
  BindingFlowResult result_;
};

TEST_F(BindingFlowChainTest, PatternsDepthsAndBounds) {
  ASSERT_EQ(result_.channels.size(), 4u);

  const ChannelVerdict& v1 = ChannelOf(result_, "v1");
  EXPECT_TRUE(v1.reachable);
  EXPECT_TRUE(v1.relevant);
  EXPECT_EQ(v1.reachable_pattern, "cf");
  EXPECT_EQ(v1.frontier_depth, 0u);
  ASSERT_TRUE(v1.fetch_bound_finite);
  EXPECT_EQ(v1.fetch_bound, 1u);  // domA holds the single constant a0.

  const ChannelVerdict& v2 = ChannelOf(result_, "v2");
  EXPECT_TRUE(v2.reachable);
  EXPECT_TRUE(v2.relevant);
  EXPECT_EQ(v2.reachable_pattern, "vf");  // domB carries runtime values.
  EXPECT_EQ(v2.frontier_depth, 1u);
  EXPECT_FALSE(v2.fetch_bound_finite);

  const ChannelVerdict& v3 = ChannelOf(result_, "v3");
  EXPECT_FALSE(v3.reachable);
  EXPECT_FALSE(v3.relevant);
  EXPECT_EQ(v3.frontier_depth, ChannelVerdict::kNoDepth);
  EXPECT_EQ(v3.certificate.kind, PruningCertificate::Kind::kUnreachability);
  EXPECT_EQ(v3.certificate.missing_domain, "domD");

  const ChannelVerdict& v4 = ChannelOf(result_, "v4");
  EXPECT_TRUE(v4.reachable);
  EXPECT_FALSE(v4.relevant);
  EXPECT_EQ(v4.frontier_depth, 1u);
  EXPECT_EQ(v4.certificate.kind, PruningCertificate::Kind::kIrrelevance);

  // The prune set is exactly the two bystanders.
  auto pruned = result_.PrunedChannels();
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned[0].first, "v3");
  EXPECT_EQ(pruned[1].first, "v4");

  // Lattice values at the fixpoint.
  EXPECT_EQ(result_.predicate_values.at("domA"), AbstractBinding::kConstant);
  EXPECT_EQ(result_.predicate_values.at("domB"), AbstractBinding::kVariable);

  // Per-source bounds cover only views with a reachable channel.
  ASSERT_EQ(result_.sources.size(), 3u);
  EXPECT_EQ(result_.sources[0].view, "v1");
  EXPECT_TRUE(result_.sources[0].fetch_bound_finite);
  EXPECT_EQ(result_.sources[0].fetch_bound, 1u);
  EXPECT_EQ(result_.sources[1].view, "v2");
  EXPECT_FALSE(result_.sources[1].fetch_bound_finite);
}

TEST_F(BindingFlowChainTest, EveryCertificateVerifies) {
  for (const ChannelVerdict& verdict : result_.channels) {
    Status status = VerifyCertificate(program_, views_, domains_,
                                      BindingFlowOptions(), verdict);
    EXPECT_TRUE(status.ok())
        << verdict.view << "[" << verdict.template_index
        << "]: " << status.message();
  }
}

TEST_F(BindingFlowChainTest, TamperedCertificatesAreRejected) {
  const BindingFlowOptions options;

  // A witness whose chain starts at the wrong predicate.
  ChannelVerdict witness = ChannelOf(result_, "v1");
  witness.certificate.steps.front().predicate = "v2";
  EXPECT_FALSE(
      VerifyCertificate(program_, views_, domains_, options, witness).ok());

  // A witness that never reaches the goal.
  witness = ChannelOf(result_, "v1");
  witness.certificate.steps.pop_back();
  EXPECT_FALSE(
      VerifyCertificate(program_, views_, domains_, options, witness).ok());

  // An irrelevance set that smuggles the view in (no longer excludes it).
  ChannelVerdict irrelevant = ChannelOf(result_, "v4");
  irrelevant.certificate.closed_set.push_back("v4");
  EXPECT_FALSE(
      VerifyCertificate(program_, views_, domains_, options, irrelevant).ok());

  // An irrelevance set missing a goal is not a refutation.
  irrelevant = ChannelOf(result_, "v4");
  irrelevant.certificate.closed_set.clear();
  EXPECT_FALSE(
      VerifyCertificate(program_, views_, domains_, options, irrelevant).ok());

  // An unreachability claim about a domain that is actually populated.
  ChannelVerdict unreachable = ChannelOf(result_, "v3");
  unreachable.certificate.missing_domain = "domB";
  EXPECT_FALSE(
      VerifyCertificate(program_, views_, domains_, options, unreachable)
          .ok());

  // A missing certificate discharges nothing.
  ChannelVerdict none = ChannelOf(result_, "v1");
  none.certificate = analysis::PruningCertificate();
  EXPECT_FALSE(
      VerifyCertificate(program_, views_, domains_, options, none).ok());
}

TEST_F(BindingFlowChainTest, RenderersAreDeterministic) {
  const std::string text = analysis::RenderBindingFlowText(result_);
  EXPECT_EQ(text, analysis::RenderBindingFlowText(result_));
  EXPECT_NE(text.find("4 channel(s), 2 relevant, 1 irrelevant, "
                      "1 unreachable"),
            std::string::npos);
  EXPECT_NE(text.find("witness: v1 -(rule"), std::string::npos);
  EXPECT_NE(text.find("'v4' is outside it"), std::string::npos);

  const std::string json = analysis::RenderBindingFlowJson(result_);
  EXPECT_EQ(json, analysis::RenderBindingFlowJson(result_));
  EXPECT_NE(json.find("\"kind\":\"witness\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"irrelevance\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"unreachability\""), std::string::npos);
  EXPECT_NE(json.find("\"missing_domain\":\"domD\""), std::string::npos);
}

TEST_F(BindingFlowChainTest, DiagnosticsCarryTheNewCodes) {
  analysis::DiagnosticBag bag;
  analysis::AppendBindingFlowDiagnostics(program_, result_, nullptr, &bag);
  std::size_t lc030 = 0, lc031 = 0, lc032 = 0;
  for (const analysis::Diagnostic& d : bag.diagnostics()) {
    if (d.code == Code::kStaticallyIrrelevantChannel) ++lc030;
    if (d.code == Code::kUnreachableChannel) ++lc031;
    if (d.code == Code::kStaticBounds) ++lc032;
  }
  EXPECT_EQ(lc030, 1u);  // v4
  EXPECT_EQ(lc031, 1u);  // v3
  EXPECT_EQ(lc032, 3u);  // one bounds note per reachable source
  EXPECT_FALSE(bag.has_errors());
}

TEST(BindingFlowAnalyzerTest, DeepPassIsOptIn) {
  auto parsed = capability::ParseCatalog(kChainCatalog);
  ASSERT_TRUE(parsed.ok());
  auto program = datalog::ParseProgram(kChainProgram);
  ASSERT_TRUE(program.ok());

  analysis::AnalysisResult shallow =
      analysis::AnalyzeProgram(*program, parsed->views);
  EXPECT_FALSE(shallow.binding_flow_ran);

  analysis::AnalysisOptions options;
  options.check_binding_flow = true;
  analysis::AnalysisResult deep =
      analysis::AnalyzeProgram(*program, parsed->views, options);
  EXPECT_TRUE(deep.binding_flow_ran);
  EXPECT_EQ(deep.binding_flow.channels.size(), 4u);
}

TEST(BindingFlowPaperTest, Example21EveryChannelIsRelevant) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kWarn;
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_TRUE(report->analysis.binding_flow_ran);

  const BindingFlowResult& flow = report->analysis.binding_flow;
  ASSERT_FALSE(flow.channels.empty());
  for (const ChannelVerdict& verdict : flow.channels) {
    EXPECT_TRUE(verdict.reachable) << verdict.view;
    EXPECT_TRUE(verdict.relevant) << verdict.view;
    Status status =
        VerifyCertificate(report->plan.optimized_program, example.views,
                          example.domains, BindingFlowOptions(), verdict);
    EXPECT_TRUE(status.ok()) << verdict.view << ": " << status.message();
  }
  EXPECT_TRUE(flow.PrunedChannels().empty());
}

TEST(BindingFlowPaperTest, Example41FlagsTheIrrelevantView) {
  // v5 is mentioned by neither connection, so it never enters the
  // program; but the *unoptimized* program of the Isbn catalog carries a
  // channel no input can unlock (v6 needs Isbn bound).
  auto parsed = capability::ParseCatalog(R"(
source v1(Song, Cd) [bf] { (t1, c1) }
source v3(Cd, Artist, Price) [bff] { (c1, a1, "$15") }
source v6(Isbn, Price) [bf] { (i1, "$9") }
)");
  ASSERT_TRUE(parsed.ok());
  QueryAnswerer answerer(&parsed->catalog, planner::DomainMap());
  planner::Query query({{"Song", Value::String("t1")}}, {"Price"},
                       {planner::Connection({"v1", "v3"}),
                        planner::Connection({"v6"})});

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kWarn;
  auto report = answerer.AnswerUnoptimized(query, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_TRUE(report->analysis.binding_flow_ran);

  const ChannelVerdict& v6 =
      ChannelOf(report->analysis.binding_flow, "v6");
  EXPECT_FALSE(v6.reachable);
  EXPECT_EQ(v6.certificate.kind, PruningCertificate::Kind::kUnreachability);

  bool saw_unreachable = false;
  for (const analysis::Diagnostic& d :
       report->analysis.diagnostics.diagnostics()) {
    if (d.code == Code::kUnreachableChannel) saw_unreachable = true;
  }
  EXPECT_TRUE(saw_unreachable);
}

}  // namespace
}  // namespace limcap
