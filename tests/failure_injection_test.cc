#include <gtest/gtest.h>

#include <memory>

#include "capability/in_memory_source.h"
#include "capability/unreliable_source.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap::exec {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using capability::UnreliableSource;

Value S(const char* text) { return Value::String(text); }

/// Example 2.1's catalog with `fail_first` injected failures on v3.
struct FlakySetup {
  SourceCatalog catalog;
  paperdata::PaperExample example;
};

FlakySetup MakeFlaky(std::size_t fail_first) {
  FlakySetup setup{SourceCatalog(), paperdata::MakeExample21()};
  for (const auto& view : setup.example.views) {
    auto* source = dynamic_cast<InMemorySource*>(
        setup.example.catalog.Find(view.name()).value());
    auto copy = std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data()));
    if (view.name() == "v4") {
      setup.catalog.RegisterUnsafe(std::make_unique<UnreliableSource>(
          std::move(copy), fail_first));
    } else {
      setup.catalog.RegisterUnsafe(std::move(copy));
    }
  }
  return setup;
}

TEST(UnreliableSourceTest, FailsThenRecovers) {
  auto inner = std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
      capability::SourceView::MakeUnsafe("v", {"A"}, "f"),
      relational::Relation(relational::Schema::MakeUnsafe({"A"}))));
  UnreliableSource source(std::move(inner), 2);
  EXPECT_FALSE(source.Execute({}).ok());
  EXPECT_FALSE(source.Execute({}).ok());
  EXPECT_TRUE(source.Execute({}).ok());
  EXPECT_EQ(source.attempts(), 3u);
}

TEST(FailureInjectionTest, DefaultAbortsOnSourceError) {
  FlakySetup setup = MakeFlaky(100);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  auto report = answerer.Answer(setup.example.query);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, ContinueYieldsSoundPartialAnswer) {
  // v4 permanently down: $13 and $10 are lost, and so is the whole
  // binding chain that ran through v4's answers (c2 -> t2 -> ...), but
  // the v1-v3 path still yields $15, and every failure is in the log.
  FlakySetup setup = MakeFlaky(100);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  ExecOptions options;
  options.continue_on_source_error = true;
  auto report = answerer.Answer(setup.example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->exec.answer.Contains({S("$15")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$13")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$10")}));
  EXPECT_GT(report->exec.log.failed_queries(), 0u);
  // Sound: everything obtained is in the healthy run's answer.
  auto healthy_setup = MakeFlaky(0);
  QueryAnswerer healthy(&healthy_setup.catalog, setup.example.domains);
  auto full = healthy.Answer(setup.example.query);
  ASSERT_TRUE(full.ok());
  for (const auto& row : report->exec.answer.DecodedRows()) {
    EXPECT_TRUE(full->exec.answer.Contains(row));
  }
}

TEST(FailureInjectionTest, TransientFailureLosesDependentBindings) {
  // v4's first query fails and is not retried (documented semantics):
  // everything downstream of that one answer — c2, hence t2, c3, a3 and
  // the $10 — is lost with it, while the v1-v3 path is unaffected.
  FlakySetup setup = MakeFlaky(1);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  ExecOptions options;
  options.continue_on_source_error = true;
  auto report = answerer.Answer(setup.example.query, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exec.log.failed_queries(), 1u);
  EXPECT_TRUE(report->exec.answer.Contains({S("$15")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$13")}));
}

}  // namespace
}  // namespace limcap::exec
