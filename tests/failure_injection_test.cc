#include <gtest/gtest.h>

#include <memory>

#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "runtime/fault_injection.h"

namespace limcap::exec {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using runtime::FaultInjectingSource;
using runtime::FaultSpec;

Value S(const char* text) { return Value::String(text); }

/// Example 2.1's catalog with `fail_first` injected failures on v4.
struct FlakySetup {
  SourceCatalog catalog;
  paperdata::PaperExample example;
};

FlakySetup MakeFlaky(std::size_t fail_first) {
  FlakySetup setup{SourceCatalog(), paperdata::MakeExample21()};
  for (const auto& view : setup.example.views) {
    auto* source = dynamic_cast<InMemorySource*>(
        setup.example.catalog.Find(view.name()).value());
    auto copy = std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data()));
    if (view.name() == "v4") {
      FaultSpec spec;
      spec.fail_first_calls = fail_first;
      setup.catalog.RegisterUnsafe(std::make_unique<FaultInjectingSource>(
          std::move(copy), spec));
    } else {
      setup.catalog.RegisterUnsafe(std::move(copy));
    }
  }
  return setup;
}

TEST(FaultInjectingSourceTest, FailsThenRecovers) {
  auto inner = std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
      capability::SourceView::MakeUnsafe("v", {"A"}, "f"),
      relational::Relation(relational::Schema::MakeUnsafe({"A"}))));
  FaultSpec spec;
  spec.fail_first_calls = 2;
  FaultInjectingSource source(std::move(inner), spec);
  auto first = source.Execute({});
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(source.Execute({}).ok());
  EXPECT_TRUE(source.Execute({}).ok());
  EXPECT_EQ(source.attempts(), 3u);
  EXPECT_EQ(source.stats().injected_failures, 2u);
}

TEST(FailureInjectionTest, DefaultAbortsOnSourceError) {
  FlakySetup setup = MakeFlaky(100);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  auto report = answerer.Answer(setup.example.query);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjectionTest, ContinueYieldsSoundPartialAnswer) {
  // v4 permanently down: $13 and $10 are lost, and so is the whole
  // binding chain that ran through v4's answers (c2 -> t2 -> ...), but
  // the v1-v3 path still yields $15, and every failure is in the log.
  FlakySetup setup = MakeFlaky(100);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  ExecOptions options;
  options.continue_on_source_error = true;
  auto report = answerer.Answer(setup.example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->exec.answer.Contains({S("$15")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$13")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$10")}));
  EXPECT_GT(report->exec.log.failed_queries(), 0u);
  // The degraded-answer annotation names the failed view and the
  // connections that may be under-answered because of it.
  const runtime::FetchReport& fetch = report->exec.fetch_report;
  EXPECT_TRUE(fetch.degraded());
  EXPECT_EQ(fetch.failed_views.count("v4"), 1u);
  ASSERT_FALSE(fetch.degraded_connections.empty());
  for (const std::string& connection : fetch.degraded_connections) {
    EXPECT_NE(connection.find("v4"), std::string::npos) << connection;
  }
  // Sound: everything obtained is in the healthy run's answer.
  auto healthy_setup = MakeFlaky(0);
  QueryAnswerer healthy(&healthy_setup.catalog, setup.example.domains);
  auto full = healthy.Answer(setup.example.query);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->exec.fetch_report.degraded());
  for (const auto& row : report->exec.answer.DecodedRows()) {
    EXPECT_TRUE(full->exec.answer.Contains(row));
  }
}

TEST(FailureInjectionTest, TransientFailureLosesDependentBindings) {
  // v4's first query fails and, with the default single-attempt retry
  // policy, is not retried: everything downstream of that one answer —
  // c2, hence t2, c3, a3 and the $10 — is lost with it, while the v1-v3
  // path is unaffected.
  FlakySetup setup = MakeFlaky(1);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  ExecOptions options;
  options.continue_on_source_error = true;
  auto report = answerer.Answer(setup.example.query, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exec.log.failed_queries(), 1u);
  EXPECT_TRUE(report->exec.answer.Contains({S("$15")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$13")}));
}

TEST(FailureInjectionTest, RetriesRecoverTransientFailures) {
  // The same fail-once fault, but with a retry budget: the second attempt
  // succeeds, nothing is lost, and the answer matches the healthy run's.
  FlakySetup setup = MakeFlaky(1);
  QueryAnswerer answerer(&setup.catalog, setup.example.domains);
  ExecOptions options;
  options.continue_on_source_error = true;
  options.runtime.retry.max_attempts = 3;
  auto report = answerer.Answer(setup.example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.log.failed_queries(), 0u);
  EXPECT_FALSE(report->exec.fetch_report.degraded());
  EXPECT_EQ(report->exec.fetch_report.total_retries, 1u);
  EXPECT_TRUE(report->exec.answer.Contains({S("$15")}));
  EXPECT_TRUE(report->exec.answer.Contains({S("$13")}));
  EXPECT_TRUE(report->exec.answer.Contains({S("$10")}));
}

}  // namespace
}  // namespace limcap::exec
