// Wire-protocol tests for limcap_serve: framing (buffer- and fd-level),
// request parsing, and response/status rendering. Suite names contain
// "Serve" so the TSan CI job's regex picks them up alongside the session
// tests.

#include "mediator/serve_protocol.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

#include "mediator/mediator.h"
#include "mediator/serve_session.h"
#include "paperdata/paper_examples.h"

namespace limcap::mediator {
namespace {

using paperdata::PaperExample;

TEST(ServeProtocolTest, FrameRoundTripsThroughBuffer) {
  const std::string payload = "{\"type\":\"status\",\"id\":7}";
  const std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  std::size_t consumed = 0;
  auto decoded = DecodeFrame(frame, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, payload);
  EXPECT_EQ(consumed, frame.size());

  // Two concatenated frames decode one at a time.
  const std::string two = frame + EncodeFrame("x");
  auto first = DecodeFrame(two, &consumed);
  ASSERT_TRUE(first.ok());
  auto second =
      DecodeFrame(std::string_view(two).substr(consumed), &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "x");
}

TEST(ServeProtocolTest, IncompleteAndOversizedFramesAreDistinguished) {
  std::size_t consumed = 0;
  // No length prefix yet, then a partial payload: both OutOfRange
  // ("read more and retry").
  EXPECT_EQ(DecodeFrame("\x00\x00", &consumed).status().code(),
            StatusCode::kOutOfRange);
  const std::string frame = EncodeFrame("hello");
  EXPECT_EQ(
      DecodeFrame(std::string_view(frame).substr(0, 6), &consumed)
          .status()
          .code(),
      StatusCode::kOutOfRange);
  // A corrupt prefix claiming gigabytes is a protocol violation — the
  // stream cannot be resynchronized, so the caller must close it.
  const std::string oversized = {'\x7f', '\x00', '\x00', '\x00'};
  EXPECT_EQ(DecodeFrame(oversized, &consumed).status().code(),
            StatusCode::kProtocolError);
}

TEST(ServeProtocolTest, FrameCapBoundaryIsExact) {
  std::size_t consumed = 0;
  // Exactly at the cap: legal. DecodeFrame sees the full frame.
  const std::string max_payload(kMaxFramePayload, 'x');
  const std::string max_frame = EncodeFrame(max_payload);
  auto at_cap = DecodeFrame(max_frame, &consumed);
  ASSERT_TRUE(at_cap.ok()) << at_cap.status();
  EXPECT_EQ(at_cap->size(), kMaxFramePayload);

  // One byte past the cap: kProtocolError from the prefix alone,
  // before any payload byte is examined (or, fd-side, read).
  const uint32_t over = static_cast<uint32_t>(kMaxFramePayload) + 1;
  std::string over_prefix(4, '\0');
  over_prefix[0] = static_cast<char>(over >> 24);
  over_prefix[1] = static_cast<char>(over >> 16);
  over_prefix[2] = static_cast<char>(over >> 8);
  over_prefix[3] = static_cast<char>(over);
  EXPECT_EQ(DecodeFrame(over_prefix, &consumed).status().code(),
            StatusCode::kProtocolError);

  // Fd-side: the oversized prefix alone (no payload will ever come)
  // must fail immediately instead of blocking on 16 MiB + 1 bytes —
  // the "clean close, not a hang" property.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], over_prefix.data(), 4), 4);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kProtocolError);
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST(ServeProtocolTest, FdFramingRoundTripsAndReportsCleanEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFrame(fds[1], "first").ok());
  ASSERT_TRUE(WriteFrame(fds[1], "").ok());  // empty payload is legal
  auto first = ReadFrame(fds[0]);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, "first");
  auto second = ReadFrame(fds[0]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");
  // Close at a frame boundary: NotFound (clean EOF), not an error.
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kNotFound);
  ::close(fds[0]);

  // A connection dying mid-frame is a protocol violation, not a clean
  // EOF and not our bug (kInternal): the peer broke the framing.
  ASSERT_EQ(::pipe(fds), 0);
  const std::string frame = EncodeFrame("truncated");
  ASSERT_EQ(::write(fds[1], frame.data(), 7),
            static_cast<ssize_t>(7));
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kProtocolError);
  ::close(fds[0]);

  // Truncation inside the 4-byte prefix itself is the same violation.
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], frame.data(), 2), static_cast<ssize_t>(2));
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kProtocolError);
  ::close(fds[0]);
}

TEST(ServeProtocolTest, ParsesQueryMessagesInPaperNotation) {
  PaperExample example = paperdata::MakeExample21();
  Json message = Json::MakeObject();
  message.Set("type", "query");
  message.Set("id", static_cast<uint64_t>(42));
  message.Set("query", example.query.ToString());
  message.Set("max_source_queries", 9);
  message.Set("deadline_ms", 250.0);
  auto wire = ParseWireRequest(message);
  ASSERT_TRUE(wire.ok()) << wire.status();
  EXPECT_EQ(wire->id, 42u);
  // The query round-trips: what travels is exactly Query::ToString.
  EXPECT_EQ(wire->request.query.ToString(), example.query.ToString());
  EXPECT_EQ(wire->request.max_source_queries, 9u);
  EXPECT_EQ(wire->request.deadline_ms, 250.0);
  EXPECT_EQ(wire->request.min_answers, 0u);

  Json no_query = Json::MakeObject();
  no_query.Set("type", "query");
  no_query.Set("id", 1);
  EXPECT_EQ(ParseWireRequest(no_query).status().code(),
            StatusCode::kInvalidArgument);

  Json bad_text = Json::MakeObject();
  bad_text.Set("type", "query");
  bad_text.Set("query", "this is not a connection query");
  EXPECT_FALSE(ParseWireRequest(bad_text).ok());
}

TEST(ServeProtocolTest, RendersLoadShedErrorsWithDistinctCode) {
  ServeResponse shed;
  shed.report = Status::LoadShed("queue full");
  shed.queue_ms = 1.5;
  const Json reply = RenderResponse(3, shed);
  EXPECT_EQ(reply.GetString("type"), "error");
  EXPECT_FALSE(reply.GetBool("ok", true));
  EXPECT_EQ(static_cast<int>(reply.GetNumber("code", 0)),
            static_cast<int>(StatusCode::kLoadShed));
  EXPECT_EQ(reply.GetString("code_name"), "Load shed");
  EXPECT_EQ(static_cast<uint64_t>(reply.GetNumber("id", 0)), 3u);
  // The rendered reply survives a wire round-trip.
  auto parsed = Json::Parse(reply.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("message"), "queue full");
}

TEST(ServeProtocolTest, RendersAnswersWithRowsAndStatusWithStats) {
  PaperExample example = paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ServeSession session(&mediator, {});
  ServeRequest request;
  request.query = example.query;
  ServeResponse response = session.Answer(std::move(request));
  ASSERT_TRUE(response.report.ok()) << response.report.status();

  const Json reply = RenderResponse(5, response);
  EXPECT_EQ(reply.GetString("type"), "answer");
  EXPECT_TRUE(reply.GetBool("ok", false));
  // Example 2.1's obtainable answer: {$15, $13, $10} on column Price.
  EXPECT_EQ(reply.Get("columns").array().size(), 1u);
  EXPECT_EQ(reply.Get("rows").array().size(), 3u);
  EXPECT_GT(reply.GetNumber("source_queries", 0), 0);

  // Status rendering includes the session stats, governor, plan-cache
  // snapshot, and the merged server counters (this used to dangle: the
  // counters come from a by-value registry snapshot).
  const Json status = RenderStatus(6, session);
  EXPECT_EQ(status.GetString("type"), "status");
  EXPECT_EQ(status.GetNumber("completed", 0), 1);
  EXPECT_EQ(status.Get("plan_cache").GetNumber("capacity", 0),
            static_cast<double>(planner::PlanCache::kDefaultCapacity));
  EXPECT_GT(status.Get("counters").GetNumber("exec.source_queries", 0), 0);
  session.Shutdown();
}

}  // namespace
}  // namespace limcap::mediator
