#include <gtest/gtest.h>

#include <set>

#include "capability/in_memory_source.h"
#include "exec/baseline_executor.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "exec/source_driven_evaluator.h"
#include "paperdata/paper_examples.h"
#include "planner/program_builder.h"

namespace limcap::exec {
namespace {

using paperdata::MakeExample21;
using paperdata::MakeExample41;
using paperdata::MakeExample51;
using paperdata::MakeExample52;
using paperdata::PaperExample;
using relational::Relation;
using relational::Row;

Value S(const char* text) { return Value::String(text); }

std::set<Row> Rows(const Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

std::set<Row> PredicateRows(const datalog::FactStore& store,
                            const std::string& predicate) {
  std::set<Row> rows;
  for (datalog::RowView row : store.Facts(predicate)) {
    rows.insert(store.Decode(row));
  }
  return rows;
}

TEST(SourceDrivenEvaluatorTest, Example21ObtainableAnswer) {
  // The headline result: the obtainable answer is {$15, $13, $10} — two
  // tuples more than the per-join baseline's {$15}.
  PaperExample example = MakeExample21();
  auto program =
      planner::BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  SourceDrivenEvaluator evaluator(&example.catalog, example.domains);
  auto result = evaluator.Execute(*program, example.query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Rows(result->answer),
            (std::set<Row>{{S("$15")}, {S("$13")}, {S("$10")}}));
  EXPECT_FALSE(result->budget_exhausted);
  // The interned-path invariant: after a tuple enters the session
  // dictionary at source ingest, it is never translated again.
  EXPECT_EQ(result->post_ingest_translations, 0u);
}

TEST(SourceDrivenEvaluatorTest, Example21Table3IdbContents) {
  // Table 3: every alpha-predicate and domain-predicate extent.
  PaperExample example = MakeExample21();
  auto program =
      planner::BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  SourceDrivenEvaluator evaluator(&example.catalog, example.domains);
  auto result = evaluator.Execute(*program, example.query);
  ASSERT_TRUE(result.ok());
  const auto& store = result->store;

  EXPECT_EQ(PredicateRows(store, "v1^"),
            (std::set<Row>{{S("t1"), S("c1")}, {S("t2"), S("c3")}}));
  EXPECT_EQ(PredicateRows(store, "v2^"),
            (std::set<Row>{{S("t1"), S("c4")}, {S("t2"), S("c2")}}));
  EXPECT_EQ(PredicateRows(store, "v3^"),
            (std::set<Row>{{S("c1"), S("a1"), S("$15")},
                           {S("c3"), S("a3"), S("$14")}}));
  EXPECT_EQ(PredicateRows(store, "v4^"),
            (std::set<Row>{{S("c1"), S("a1"), S("$13")},
                           {S("c2"), S("a1"), S("$12")},
                           {S("c4"), S("a3"), S("$10")}}));
  EXPECT_EQ(PredicateRows(store, "song"),
            (std::set<Row>{{S("t1")}, {S("t2")}}));
  EXPECT_EQ(PredicateRows(store, "cd"),
            (std::set<Row>{{S("c1")}, {S("c2")}, {S("c3")}, {S("c4")}}));
  EXPECT_EQ(PredicateRows(store, "artist"),
            (std::set<Row>{{S("a1")}, {S("a3")}}));
  EXPECT_EQ(PredicateRows(store, "price"),
            (std::set<Row>{{S("$15")}, {S("$14")}, {S("$13")}, {S("$12")},
                           {S("$10")}}));
  // The unobtainable tuples stay unobtainable: a5 and c5 never appear.
  EXPECT_EQ(PredicateRows(store, "artist").count({S("a5")}), 0u);
  EXPECT_EQ(PredicateRows(store, "cd").count({S("c5")}), 0u);
}

TEST(SourceDrivenEvaluatorTest, Example21TraceIssuesProductiveQueries) {
  // Table 2's eight productive queries (our round-based order may differ,
  // and unproductive probes are also logged).
  PaperExample example = MakeExample21();
  auto program =
      planner::BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  SourceDrivenEvaluator evaluator(&example.catalog, example.domains);
  auto result = evaluator.Execute(*program, example.query);
  ASSERT_TRUE(result.ok());

  std::set<std::string> productive;
  for (const auto& record : result->log.records()) {
    if (record.tuples_returned > 0) productive.insert(record.RenderedQuery());
  }
  EXPECT_EQ(productive, (std::set<std::string>{
                            "v1(t1, C)", "v1(t2, C)", "v2(S, c2)",
                            "v2(S, c4)", "v3(c1, A, P)", "v3(c3, A, P)",
                            "v4(C, a1, P)", "v4(C, a3, P)"}));
  // Every query is asked at most once.
  std::set<std::string> all;
  for (const auto& record : result->log.records()) {
    EXPECT_TRUE(all.insert(record.RenderedQuery()).second)
        << "duplicate query " << record.RenderedQuery();
  }
}

TEST(SourceDrivenEvaluatorTest, Example21TraceMatchesTable2Order) {
  // Strongest reproduction claim: the round-based scheduler's productive
  // queries come out in exactly the order the paper's Table 2 lists.
  PaperExample example = MakeExample21();
  auto program =
      planner::BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  SourceDrivenEvaluator evaluator(&example.catalog, example.domains);
  auto result = evaluator.Execute(*program, example.query);
  ASSERT_TRUE(result.ok());
  std::vector<std::string> productive;
  for (const auto& record : result->log.records()) {
    if (record.tuples_returned > 0) productive.push_back(record.RenderedQuery());
  }
  EXPECT_EQ(productive,
            (std::vector<std::string>{"v1(t1, C)", "v3(c1, A, P)",
                                      "v4(C, a1, P)", "v2(S, c2)",
                                      "v1(t2, C)", "v3(c3, A, P)",
                                      "v4(C, a3, P)", "v2(S, c4)"}));
}

TEST(OracleTest, Example21CompleteAnswer) {
  PaperExample example = MakeExample21();
  auto complete = CompleteAnswer(example.query, example.catalog);
  ASSERT_TRUE(complete.ok()) << complete.status();
  EXPECT_EQ(Rows(*complete), (std::set<Row>{{S("$15")}, {S("$13")},
                                            {S("$11")}, {S("$10")}}));
}

TEST(BaselineTest, Example21BaselineGetsOnlyFifteen) {
  PaperExample example = MakeExample21();
  BaselineExecutor baseline(&example.catalog);
  auto result = baseline.Execute(example.query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Rows(result->answer), (std::set<Row>{{S("$15")}}));
  // Three of the four joins are skipped as inexecutable.
  EXPECT_EQ(result->skipped_connections.size(), 3u);
}

TEST(QueryAnswererTest, Example21EndToEnd) {
  PaperExample example = MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(Rows(report->exec.answer),
            (std::set<Row>{{S("$15")}, {S("$13")}, {S("$10")}}));
  // All four views are relevant in Example 2.1, so no trimming happens.
  EXPECT_EQ(report->plan.relevance.relevant_union.size(), 4u);
  // End-to-end interning: the answer relation shares the session
  // dictionary and no value was translated after source ingest.
  ASSERT_NE(report->exec.session_dict, nullptr);
  EXPECT_TRUE(report->exec.answer.dict_ptr() == report->exec.session_dict);
  EXPECT_EQ(report->exec.post_ingest_translations, 0u);
}

TEST(QueryAnswererTest, Example41OptimizedMatchesUnoptimized) {
  // Theorem 5.1 in action: executing Π(Q, V_r) (9 rules) and Π(Q, V)
  // (15 rules) produce the same answer, but the optimized plan touches
  // fewer sources (never v5).
  PaperExample example = MakeExample41();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto optimized = answerer.Answer(example.query);
  auto unoptimized = answerer.AnswerUnoptimized(example.query);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(unoptimized.ok());
  EXPECT_EQ(Rows(optimized->exec.answer), Rows(unoptimized->exec.answer));
  EXPECT_EQ(Rows(optimized->exec.answer),
            (std::set<Row>{{S("d1")}, {S("d2")}}));
  EXPECT_EQ(optimized->exec.log.QueriesTo("v5"), 0u);
  EXPECT_GT(unoptimized->exec.log.QueriesTo("v5"), 0u);
  EXPECT_LT(optimized->exec.log.total_queries(),
            unoptimized->exec.log.total_queries());
}

TEST(QueryAnswererTest, Example41ObtainableIsStrictSubsetOfComplete) {
  PaperExample example = MakeExample41();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  auto complete = CompleteAnswer(example.query, example.catalog);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(complete.ok());
  // d9 is in the complete answer but unobtainable (c9 never enters domC).
  EXPECT_EQ(Rows(*complete),
            (std::set<Row>{{S("d1")}, {S("d2")}, {S("d9")}}));
  for (const Row& row : report->exec.answer.DecodedRows()) {
    EXPECT_TRUE(complete->Contains(row));
  }
  EXPECT_FALSE(report->exec.answer.Contains({S("d9")}));
}

TEST(QueryAnswererTest, Example51AnswerNeedsV4NotV5) {
  PaperExample example = MakeExample51();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(Rows(report->exec.answer),
            (std::set<Row>{{S("f"), S("g")}}));
  EXPECT_EQ(report->exec.log.QueriesTo("v5"), 0u);
  EXPECT_GT(report->exec.log.QueriesTo("v4"), 0u);
}

TEST(QueryAnswererTest, Example52CycleResolvedThroughV4) {
  PaperExample example = MakeExample52();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(Rows(report->exec.answer),
            (std::set<Row>{{S("a1"), S("c1"), S("e1")}}));
}

TEST(BaselineTest, IndependentConnectionMatchesOracle) {
  // Theorem 4.1: for the independent T1 of Example 4.1, the baseline's
  // bind-join chain retrieves the complete answer for that connection.
  PaperExample example = MakeExample41();
  planner::Query t1_only(example.query.inputs(), example.query.outputs(),
                         {example.query.connections()[0]});
  BaselineExecutor baseline(&example.catalog);
  auto result = baseline.Execute(t1_only);
  auto complete = CompleteAnswer(t1_only, example.catalog);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(result->skipped_connections.empty());
  EXPECT_EQ(Rows(result->answer), Rows(*complete));
}

TEST(BudgetTest, PartialAnswerUnderBudget) {
  // Section 7.2: with a tiny source-access budget the evaluator returns a
  // partial answer; with a generous one it returns the maximal answer.
  PaperExample example = MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);

  ExecOptions tight;
  tight.max_source_queries = 2;
  auto partial = answerer.Answer(example.query, tight);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->exec.budget_exhausted);
  EXPECT_LE(partial->exec.log.total_queries(), 2u);
  EXPECT_LE(partial->exec.answer.size(), 3u);

  auto full = answerer.Answer(example.query);
  ASSERT_TRUE(full.ok());
  // Monotone: every budgeted answer is part of the maximal one.
  for (const Row& row : partial->exec.answer.DecodedRows()) {
    EXPECT_TRUE(full->exec.answer.Contains(row));
  }
  // Budgets grow monotonically toward the maximal answer.
  std::size_t previous = 0;
  for (std::size_t budget : {1u, 3u, 6u, 9u, 12u, 100u}) {
    ExecOptions options;
    options.max_source_queries = budget;
    auto result = answerer.Answer(example.query, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->exec.answer.size(), previous);
    previous = result->exec.answer.size();
  }
  EXPECT_EQ(previous, 3u);
}

TEST(BudgetTest, ZeroBudgetYieldsEmptyAnswer) {
  PaperExample example = MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions options;
  options.max_source_queries = 0;
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->exec.answer.empty());
  EXPECT_TRUE(report->exec.budget_exhausted);
  EXPECT_EQ(report->exec.log.total_queries(), 0u);
}

TEST(ExecModesTest, NaiveAndSemiNaiveAgreeOnExample21) {
  PaperExample example = MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions naive;
  naive.mode = datalog::Evaluator::Mode::kNaive;
  auto a = answerer.Answer(example.query, naive);
  auto b = answerer.Answer(example.query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Rows(a->exec.answer), Rows(b->exec.answer));
}

TEST(ExecModesTest, ParallelSemiNaiveAgreesOnExample21) {
  // Parallel inner evaluation must not change the source-driven answer:
  // same answer rows, and the same source queries issued in the same
  // rounds (the watermark contract is identical in both modes).
  PaperExample example = MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions parallel;
  parallel.mode = datalog::Evaluator::Mode::kParallelSemiNaive;
  parallel.eval_threads = 4;
  auto a = answerer.Answer(example.query, parallel);
  auto b = answerer.Answer(example.query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Rows(a->exec.answer), Rows(b->exec.answer));
  EXPECT_EQ(a->exec.log.total_queries(), b->exec.log.total_queries());
  EXPECT_EQ(a->exec.rounds, b->exec.rounds);
}

TEST(ExecTest, CachedTupleUnlocksMoreAnswers) {
  // Section 7.1: caching the v4 tuple <c5, a5, $11> (e.g. from an earlier
  // session) makes the $11 answer obtainable in Example 2.1.
  PaperExample example = MakeExample21();
  auto program =
      planner::BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(planner::AddCachedTupleRules(
                  example.views[3], {S("c5"), S("a5"), S("$11")},
                  example.domains, planner::BuilderOptions{}, &*program)
                  .ok());
  SourceDrivenEvaluator evaluator(&example.catalog, example.domains);
  auto result = evaluator.Execute(*program, example.query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Rows(result->answer),
            (std::set<Row>{{S("$15")}, {S("$13")}, {S("$11")}, {S("$10")}}));
}

TEST(ExecTest, DomainKnowledgeUnlocksSource) {
  // Section 7.1's student example: a bbf source is unusable without
  // bindings; supplying the known departments as domain facts unlocks it.
  capability::SourceCatalog catalog;
  capability::SourceView student = capability::SourceView::MakeUnsafe(
      "student", {"Name", "Dept", "GPA"}, "bbf");
  relational::Relation data(student.schema());
  data.InsertUnsafe({S("alice"), S("CS"), S("3.9")});
  data.InsertUnsafe({S("bob"), S("EE"), S("3.4")});
  catalog.RegisterUnsafe(
      std::make_unique<capability::InMemorySource>(
          capability::InMemorySource::MakeUnsafe(student, std::move(data))));

  planner::DomainMap domains;
  planner::Query query({{"Name", S("alice")}}, {"GPA"},
                       {planner::Connection({"student"})});
  auto program = planner::BuildProgram(query, {student}, domains);
  ASSERT_TRUE(program.ok());

  // Without the department knowledge: no way to bind Dept.
  SourceDrivenEvaluator evaluator(&catalog, domains);
  auto stuck = evaluator.Execute(*program, query);
  ASSERT_TRUE(stuck.ok());
  EXPECT_TRUE(stuck->answer.empty());

  for (const char* dept : {"CS", "EE", "Physics", "Chemistry"}) {
    planner::AddDomainKnowledgeRule("Dept", S(dept), domains, &*program);
  }
  auto unlocked = evaluator.Execute(*program, query);
  ASSERT_TRUE(unlocked.ok());
  EXPECT_EQ(Rows(unlocked->answer), (std::set<Row>{{S("3.9")}}));
}

TEST(ExecTest, NonQueryableQueryYieldsEmptyAnswer) {
  // Removing v4 from Example 5.2 leaves no queryable view; the planner
  // drops the connection and execution returns an empty answer with zero
  // source queries.
  PaperExample example = MakeExample52();
  capability::SourceCatalog catalog;
  std::map<std::string, relational::Relation> data;
  for (const auto& view : example.views) {
    if (view.name() == "v4") continue;
    auto* source = dynamic_cast<capability::InMemorySource*>(
        example.catalog.Find(view.name()).value());
    catalog.RegisterUnsafe(std::make_unique<capability::InMemorySource>(
        capability::InMemorySource::MakeUnsafe(view, source->data())));
  }
  QueryAnswerer answerer(&catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->exec.answer.empty());
  EXPECT_EQ(report->exec.log.total_queries(), 0u);
  EXPECT_EQ(report->plan.optimized_program.size(), 0u);
}

}  // namespace
}  // namespace limcap::exec
