#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "common/value.h"
#include "common/value_dictionary.h"

namespace limcap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad view");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad view");
  EXPECT_EQ(status.ToString(), "Invalid argument: bad view");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0;
       code <= static_cast<int>(StatusCode::kProtocolError); ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)),
                 "Unknown");
  }
}

TEST(StatusTest, CapabilityViolationIsDistinct) {
  Status status = Status::CapabilityViolation("must bind Cd");
  EXPECT_EQ(status.code(), StatusCode::kCapabilityViolation);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsWhenNegative(int x) {
  LIMCAP_RETURN_NOT_OK(x < 0 ? Status::OutOfRange("negative")
                             : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailsWhenNegative(3).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LIMCAP_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value::Int64(3).is_int64());
  EXPECT_TRUE(Value::Double(2.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int64(-9).int64(), -9);
  EXPECT_DOUBLE_EQ(Value::Double(1.25).dbl(), 1.25);
  EXPECT_EQ(Value::String("abc").str(), "abc");
}

TEST(ValueTest, EqualityIsKindAware) {
  EXPECT_EQ(Value::Int64(1), Value::Int64(1));
  EXPECT_NE(Value::Int64(1), Value::Double(1.0));
  EXPECT_NE(Value::String("1"), Value::Int64(1));
  EXPECT_NE(Value::Null(), Value::Int64(0));
}

TEST(ValueTest, TotalOrder) {
  std::set<Value> values = {Value::String("b"), Value::Int64(2),
                            Value::Int64(1), Value::String("a"),
                            Value::Null()};
  EXPECT_EQ(values.size(), 5u);
  EXPECT_TRUE(Value::Int64(1) < Value::Int64(2));
  // Kind order: null < int < double < string.
  EXPECT_TRUE(Value::Null() < Value::Int64(0));
  EXPECT_TRUE(Value::Int64(99) < Value::Double(0.0));
  EXPECT_TRUE(Value::Double(99.0) < Value::String(""));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("t1").ToString(), "t1");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(0.1).ToString(), "0.1");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  std::unordered_set<Value> values;
  for (int i = 0; i < 100; ++i) values.insert(Value::Int64(i % 10));
  EXPECT_EQ(values.size(), 10u);
}

TEST(ValueDictionaryTest, InternIsIdempotent) {
  ValueDictionary dict;
  ValueId a = dict.Intern(Value::String("t1"));
  ValueId b = dict.Intern(Value::String("t1"));
  ValueId c = dict.Intern(Value::String("t2"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Get(a), Value::String("t1"));
  EXPECT_EQ(dict.Get(c), Value::String("t2"));
}

TEST(ValueDictionaryTest, LookupWithoutInterning) {
  ValueDictionary dict;
  ValueId id = 99;
  EXPECT_FALSE(dict.Lookup(Value::Int64(5), &id));
  ValueId interned = dict.Intern(Value::Int64(5));
  ASSERT_TRUE(dict.Lookup(Value::Int64(5), &id));
  EXPECT_EQ(id, interned);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, "|"), "only");
}

TEST(StringUtilTest, JoinMapped) {
  std::vector<int> numbers = {1, 2, 3};
  EXPECT_EQ(JoinMapped(numbers, "+",
                       [](int n) { return std::to_string(n); }),
            "1+2+3");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitAndTrim) {
  auto pieces = SplitAndTrim("a, b ,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("v1^", "v1"));
  EXPECT_FALSE(StartsWith("v", "v1"));
}

TEST(HashTest, HashRangeDiffersOnOrder) {
  std::vector<int> a = {1, 2, 3};
  std::vector<int> b = {3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
  EXPECT_EQ(HashRange(a.begin(), a.end()), HashRange(a.begin(), a.end()));
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"Source", "Must Bind"});
  table.AddRow({"v1", "Song"});
  table.AddRow({"v300", "Cd"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Source | Must Bind"), std::string::npos);
  EXPECT_NE(rendered.find("v300"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(10), 10u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.Range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace limcap
