#include <gtest/gtest.h>

#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/cost_model.h"
#include "workload/generator.h"

namespace limcap::planner {
namespace {

using paperdata::MakeExample21;

TEST(CollectStatsTest, ExactCounts) {
  auto example = MakeExample21();
  auto stats = CollectCatalogStats(example.catalog);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const ViewStats& v4 = stats->at("v4");
  EXPECT_EQ(v4.tuple_count, 4u);
  EXPECT_EQ(v4.distinct_values.at("Cd"), 4u);
  EXPECT_EQ(v4.distinct_values.at("Artist"), 3u);
  EXPECT_EQ(v4.distinct_values.at("Price"), 4u);
}

TEST(EstimateTest, NoInputsMeansNoQueriesOnBoundCatalog) {
  // Every view of Example 2.1 has a bound attribute; without any initial
  // binding nothing can ever be asked.
  auto example = MakeExample21();
  auto stats = CollectCatalogStats(example.catalog);
  ASSERT_TRUE(stats.ok());
  Query no_inputs({}, {"Price"},
                  {Connection({"v1", "v3"})});
  CostEstimate estimate = EstimateExecution(no_inputs, example.views,
                                            example.domains, *stats);
  EXPECT_DOUBLE_EQ(estimate.total_queries, 0.0);
}

TEST(EstimateTest, Example21InTheRightBallpark) {
  // The real evaluation of Example 2.1 issues 12 queries and obtains 11
  // source tuples; the analytic estimate must land within a small factor.
  auto example = MakeExample21();
  auto stats = CollectCatalogStats(example.catalog);
  ASSERT_TRUE(stats.ok());
  CostEstimate estimate = EstimateExecution(example.query, example.views,
                                            example.domains, *stats);
  EXPECT_GT(estimate.total_queries, 12.0 / 4.0);
  EXPECT_LT(estimate.total_queries, 12.0 * 4.0);
  EXPECT_GT(estimate.iterations, 1u);
  // All four views get queried in the estimate, as in reality.
  for (const char* view : {"v1", "v2", "v3", "v4"}) {
    EXPECT_GT(estimate.source_queries.at(view), 0.0) << view;
  }
  // Domain estimates are bounded by the universes.
  EXPECT_LE(estimate.domain_values.at("cd"), 5.0 + 1e-9);
  EXPECT_LE(estimate.domain_values.at("artist"), 4.0 + 1e-9);
  EXPECT_FALSE(estimate.ToString().empty());
}

TEST(EstimateTest, MonotoneInSeeding) {
  auto example = MakeExample21();
  auto stats = CollectCatalogStats(example.catalog);
  ASSERT_TRUE(stats.ok());
  CostEstimate cold = EstimateExecution(example.query, example.views,
                                        example.domains, *stats);
  CostEstimate warm = EstimateExecution(example.query, example.views,
                                        example.domains, *stats,
                                        {{"artist", 2.0}});
  EXPECT_GE(warm.total_queries, cold.total_queries);
  EXPECT_GE(warm.domain_values.at("artist"), cold.domain_values.at("artist"));
}

class EstimateAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EstimateAccuracy, WithinAnOrderOfMagnitude) {
  // On random instances the estimate should track the measured source
  // accesses within 10x either way (the usual cardinality-estimation
  // tolerance on small uniform data).
  workload::CatalogSpec spec;
  spec.topology = workload::CatalogSpec::Topology::kRandom;
  spec.num_views = 8;
  spec.num_attributes = 7;
  spec.tuples_per_view = 40;
  spec.domain_size = 15;
  spec.seed = GetParam() * 211 + 17;
  auto instance = workload::GenerateInstance(spec);
  workload::QuerySpec query_spec;
  query_spec.num_connections = 2;
  query_spec.views_per_connection = 2;
  query_spec.seed = GetParam() * 5 + 1;
  auto query = workload::GenerateQuery(instance, query_spec);
  if (!query.ok()) GTEST_SKIP();

  auto stats = CollectCatalogStats(instance.catalog);
  ASSERT_TRUE(stats.ok());
  CostEstimate estimate = EstimateExecution(
      *query, instance.views, instance.domains, *stats);

  exec::QueryAnswerer answerer(&instance.catalog, instance.domains);
  // Estimate against the brute-force program, which queries all views
  // like the estimator assumes.
  auto report = answerer.AnswerUnoptimized(*query);
  ASSERT_TRUE(report.ok());
  double actual = static_cast<double>(report->exec.log.total_queries());
  if (actual < 3) GTEST_SKIP() << "degenerate instance";
  EXPECT_GT(estimate.total_queries, actual / 10.0)
      << "actual " << actual << ", estimated " << estimate.total_queries;
  EXPECT_LT(estimate.total_queries, actual * 10.0)
      << "actual " << actual << ", estimated " << estimate.total_queries;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateAccuracy,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace limcap::planner
