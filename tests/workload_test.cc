#include <gtest/gtest.h>

#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "planner/query_parser.h"
#include "workload/generator.h"

namespace limcap::workload {
namespace {

TEST(GeneratorTest, DeterministicAcrossCalls) {
  CatalogSpec spec;
  spec.seed = 99;
  GeneratedInstance a = GenerateInstance(spec);
  GeneratedInstance b = GenerateInstance(spec);
  ASSERT_EQ(a.views.size(), b.views.size());
  for (std::size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].ToString(), b.views[i].ToString());
    EXPECT_TRUE(a.full_data.at(a.views[i].name()) ==
                b.full_data.at(b.views[i].name()));
  }
}

TEST(GeneratorTest, SeedChangesInstance) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kRandom;
  spec.seed = 1;
  GeneratedInstance a = GenerateInstance(spec);
  spec.seed = 2;
  GeneratedInstance b = GenerateInstance(spec);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.views.size(); ++i) {
    if (!(a.views[i].ToString() == b.views[i].ToString()) ||
        !(a.full_data.at(a.views[i].name()) ==
          b.full_data.at(b.views[i].name()))) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, ChainTopologyShape) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = 5;
  GeneratedInstance instance = GenerateInstance(spec);
  ASSERT_EQ(instance.views.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(instance.views[i].pattern().ToString(), "bf");
    EXPECT_EQ(instance.views[i].schema().attribute(0),
              "A" + std::to_string(i));
    EXPECT_EQ(instance.views[i].schema().attribute(1),
              "A" + std::to_string(i + 1));
  }
}

TEST(GeneratorTest, StarTopologySharesHub) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kStar;
  spec.num_views = 6;
  GeneratedInstance instance = GenerateInstance(spec);
  for (const auto& view : instance.views) {
    EXPECT_EQ(view.schema().attribute(0), "A0");
  }
}

TEST(GeneratorTest, RandomViewsNeverFullyBoundAboveArityOne) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kRandom;
  spec.num_views = 30;
  spec.bound_probability = 0.95;
  spec.seed = 5;
  GeneratedInstance instance = GenerateInstance(spec);
  for (const auto& view : instance.views) {
    if (view.schema().arity() > 1) {
      EXPECT_FALSE(view.FreeAttributes().empty()) << view.ToString();
    }
  }
}

TEST(GeneratorTest, DataRespectsDomains) {
  CatalogSpec spec;
  spec.domain_size = 4;
  spec.seed = 3;
  GeneratedInstance instance = GenerateInstance(spec);
  for (const auto& view : instance.views) {
    const auto& data = instance.full_data.at(view.name());
    for (std::size_t col = 0; col < view.schema().arity(); ++col) {
      EXPECT_LE(data.ColumnValues(col).size(), 4u);
    }
  }
}

TEST(GeneratorTest, GeneratedQueryValidates) {
  CatalogSpec spec;
  spec.seed = 17;
  GeneratedInstance instance = GenerateInstance(spec);
  QuerySpec query_spec;
  query_spec.seed = 4;
  auto query = GenerateQuery(instance, query_spec);
  if (!query.ok()) GTEST_SKIP();
  EXPECT_TRUE(query->Validate(instance.catalog).ok());
  EXPECT_EQ(query->connections().size(), query_spec.num_connections);
  // Deterministic.
  auto again = GenerateQuery(instance, query_spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(query->ToString(), again->ToString());
}

TEST(GeneratorTest, ChainQueryEndToEnd) {
  // A bf-chain is fully answerable from its head binding: framework and
  // oracle must agree.
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = 4;
  spec.tuples_per_view = 30;
  spec.domain_size = 10;
  spec.seed = 23;
  GeneratedInstance instance = GenerateInstance(spec);

  planner::Query query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A4"},
      {planner::Connection({"v1", "v2", "v3", "v4"})});
  ASSERT_TRUE(query.Validate(instance.catalog).ok());

  exec::QueryAnswerer answerer(&instance.catalog, instance.domains);
  auto report = answerer.Answer(query);
  ASSERT_TRUE(report.ok()) << report.status();
  auto complete = exec::CompleteAnswer(query, instance.full_data);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(report->exec.answer == *complete);
}

// ---------------------------------------------------------------------------
// Mixed serving workload.

TEST(MixedWorkloadTest, DeterministicAndInterleavesAllClasses) {
  MixedWorkloadSpec spec;
  spec.seed = 5;
  spec.num_requests = 48;
  auto a = GenerateMixedWorkload(spec);
  auto b = GenerateMixedWorkload(spec);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  // Same spec, same arrival sequence — byte for byte. This is what lets
  // limcap_serve_client regenerate the daemon's workload from a seed.
  ASSERT_EQ(a->requests.size(), b->requests.size());
  std::size_t paper = 0, chain = 0, random = 0;
  for (std::size_t i = 0; i < a->requests.size(); ++i) {
    EXPECT_EQ(a->requests[i].query_class, b->requests[i].query_class);
    EXPECT_EQ(a->requests[i].query.ToString(),
              b->requests[i].query.ToString());
    switch (a->requests[i].query_class) {
      case MixedRequest::Class::kPaper:
        ++paper;
        break;
      case MixedRequest::Class::kChain:
        ++chain;
        break;
      case MixedRequest::Class::kRandom:
        ++random;
        break;
    }
  }
  // Equal default weights over 48 draws: every class shows up.
  EXPECT_GT(paper, 0u);
  EXPECT_GT(chain, 0u);
  EXPECT_GT(random, 0u);

  // The merged catalog holds all three source families, names disjoint.
  EXPECT_TRUE(a->catalog.Contains("v1"));   // paper Example 2.1
  EXPECT_TRUE(a->catalog.Contains("cv1"));  // chain, prefixed
  EXPECT_TRUE(a->catalog.Contains("rv1"));  // random topology, prefixed
}

TEST(MixedWorkloadTest, QueriesValidateAndRoundTripAsText) {
  MixedWorkloadSpec spec;
  spec.seed = 12;
  spec.num_requests = 24;
  auto workload = GenerateMixedWorkload(spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  for (const MixedRequest& request : workload->requests) {
    EXPECT_TRUE(request.query.Validate(workload->catalog).ok())
        << request.query.ToString();
    // The serve wire protocol ships queries as paper-notation text.
    const std::string text = request.query.ToString();
    auto parsed = planner::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for " << text;
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(MixedWorkloadTest, ZeroWeightDropsClassAndItsSources) {
  MixedWorkloadSpec spec;
  spec.seed = 9;
  spec.num_requests = 16;
  spec.random_weight = 0;
  auto workload = GenerateMixedWorkload(spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_FALSE(workload->catalog.Contains("rv1"));
  for (const MixedRequest& request : workload->requests) {
    EXPECT_NE(request.query_class, MixedRequest::Class::kRandom);
  }

  MixedWorkloadSpec none;
  none.paper_weight = 0;
  none.chain_weight = 0;
  none.random_weight = 0;
  EXPECT_EQ(GenerateMixedWorkload(none).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace limcap::workload
