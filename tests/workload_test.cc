#include <gtest/gtest.h>

#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "workload/generator.h"

namespace limcap::workload {
namespace {

TEST(GeneratorTest, DeterministicAcrossCalls) {
  CatalogSpec spec;
  spec.seed = 99;
  GeneratedInstance a = GenerateInstance(spec);
  GeneratedInstance b = GenerateInstance(spec);
  ASSERT_EQ(a.views.size(), b.views.size());
  for (std::size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].ToString(), b.views[i].ToString());
    EXPECT_TRUE(a.full_data.at(a.views[i].name()) ==
                b.full_data.at(b.views[i].name()));
  }
}

TEST(GeneratorTest, SeedChangesInstance) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kRandom;
  spec.seed = 1;
  GeneratedInstance a = GenerateInstance(spec);
  spec.seed = 2;
  GeneratedInstance b = GenerateInstance(spec);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.views.size(); ++i) {
    if (!(a.views[i].ToString() == b.views[i].ToString()) ||
        !(a.full_data.at(a.views[i].name()) ==
          b.full_data.at(b.views[i].name()))) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, ChainTopologyShape) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = 5;
  GeneratedInstance instance = GenerateInstance(spec);
  ASSERT_EQ(instance.views.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(instance.views[i].pattern().ToString(), "bf");
    EXPECT_EQ(instance.views[i].schema().attribute(0),
              "A" + std::to_string(i));
    EXPECT_EQ(instance.views[i].schema().attribute(1),
              "A" + std::to_string(i + 1));
  }
}

TEST(GeneratorTest, StarTopologySharesHub) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kStar;
  spec.num_views = 6;
  GeneratedInstance instance = GenerateInstance(spec);
  for (const auto& view : instance.views) {
    EXPECT_EQ(view.schema().attribute(0), "A0");
  }
}

TEST(GeneratorTest, RandomViewsNeverFullyBoundAboveArityOne) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kRandom;
  spec.num_views = 30;
  spec.bound_probability = 0.95;
  spec.seed = 5;
  GeneratedInstance instance = GenerateInstance(spec);
  for (const auto& view : instance.views) {
    if (view.schema().arity() > 1) {
      EXPECT_FALSE(view.FreeAttributes().empty()) << view.ToString();
    }
  }
}

TEST(GeneratorTest, DataRespectsDomains) {
  CatalogSpec spec;
  spec.domain_size = 4;
  spec.seed = 3;
  GeneratedInstance instance = GenerateInstance(spec);
  for (const auto& view : instance.views) {
    const auto& data = instance.full_data.at(view.name());
    for (std::size_t col = 0; col < view.schema().arity(); ++col) {
      EXPECT_LE(data.ColumnValues(col).size(), 4u);
    }
  }
}

TEST(GeneratorTest, GeneratedQueryValidates) {
  CatalogSpec spec;
  spec.seed = 17;
  GeneratedInstance instance = GenerateInstance(spec);
  QuerySpec query_spec;
  query_spec.seed = 4;
  auto query = GenerateQuery(instance, query_spec);
  if (!query.ok()) GTEST_SKIP();
  EXPECT_TRUE(query->Validate(instance.catalog).ok());
  EXPECT_EQ(query->connections().size(), query_spec.num_connections);
  // Deterministic.
  auto again = GenerateQuery(instance, query_spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(query->ToString(), again->ToString());
}

TEST(GeneratorTest, ChainQueryEndToEnd) {
  // A bf-chain is fully answerable from its head binding: framework and
  // oracle must agree.
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = 4;
  spec.tuples_per_view = 30;
  spec.domain_size = 10;
  spec.seed = 23;
  GeneratedInstance instance = GenerateInstance(spec);

  planner::Query query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A4"},
      {planner::Connection({"v1", "v2", "v3", "v4"})});
  ASSERT_TRUE(query.Validate(instance.catalog).ok());

  exec::QueryAnswerer answerer(&instance.catalog, instance.domains);
  auto report = answerer.Answer(query);
  ASSERT_TRUE(report.ok()) << report.status();
  auto complete = exec::CompleteAnswer(query, instance.full_data);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(report->exec.answer == *complete);
}

}  // namespace
}  // namespace limcap::workload
