#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "capability/in_memory_source.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "planner/find_rel.h"
#include "planner/program_builder.h"

namespace limcap {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceView;
using relational::Relation;
using relational::Row;

Value S(const char* text) { return Value::String(text); }

/// The bookstore scenario with attributes sharing a domain (Section 3's
/// grouped domains, in contrast to Section 5's distinct-domain
/// assumption): bn lists a *co-author* for each title; CoAuthor and
/// Author share the "person" domain, so co-authors discovered at bn can
/// be used as Author bindings at amazon.
struct GroupedCatalog {
  SourceCatalog catalog;
  std::vector<SourceView> views;
  planner::DomainMap domains;
};

GroupedCatalog MakeGroupedCatalog() {
  GroupedCatalog out;
  SourceView prenhall =
      SourceView::MakeUnsafe("prenhall", {"Publisher", "Author"}, "bf");
  Relation prenhall_data(prenhall.schema());
  prenhall_data.InsertUnsafe({S("ph"), S("ullman")});

  SourceView amazon =
      SourceView::MakeUnsafe("amazon", {"Author", "Title", "PriceA"}, "bff");
  Relation amazon_data(amazon.schema());
  amazon_data.InsertUnsafe({S("ullman"), S("db_systems"), S("95")});
  amazon_data.InsertUnsafe({S("garcia"), S("distributed_dbs"), S("110")});

  SourceView bn =
      SourceView::MakeUnsafe("bn", {"Title", "CoAuthor", "PriceB"}, "bff");
  Relation bn_data(bn.schema());
  bn_data.InsertUnsafe({S("db_systems"), S("garcia"), S("89")});
  bn_data.InsertUnsafe({S("distributed_dbs"), S("garcia"), S("99")});

  out.views = {prenhall, amazon, bn};
  out.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(prenhall, std::move(prenhall_data))));
  out.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(amazon, std::move(amazon_data))));
  out.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(bn, std::move(bn_data))));
  out.domains.SetDomain("Author", "person");
  out.domains.SetDomain("CoAuthor", "person");
  return out;
}

planner::Query PriceQuery() {
  // Prices at both stores for every reachable title; amazon ⋈ bn joins
  // on Title only (CoAuthor ≠ Author as attributes).
  return planner::Query({{"Publisher", S("ph")}}, {"Title", "PriceA", "PriceB"},
                        {planner::Connection({"amazon", "bn"})});
}

TEST(GroupedDomainTest, DomainMapBasics) {
  planner::DomainMap domains;
  EXPECT_EQ(domains.DomainOf("Author"), "domAuthor");
  domains.SetDomain("Author", "person");
  domains.SetDomain("CoAuthor", "person");
  EXPECT_EQ(domains.DomainOf("Author"), "person");
  EXPECT_TRUE(domains.SameDomain("Author", "CoAuthor"));
  EXPECT_FALSE(domains.SameDomain("Author", "Title"));
}

TEST(GroupedDomainTest, BuilderSharesDomainPredicates) {
  GroupedCatalog grouped = MakeGroupedCatalog();
  auto program = planner::BuildProgram(PriceQuery(), grouped.views,
                                       grouped.domains);
  ASSERT_TRUE(program.ok()) << program.status();
  // bn's CoAuthor domain rule and amazon's Author requirement both use
  // the shared predicate "person".
  bool person_head = false;
  bool person_body = false;
  for (const auto& rule : program->rules()) {
    if (rule.head.predicate == "person") person_head = true;
    for (const auto& atom : rule.body) {
      if (atom.predicate == "person") person_body = true;
    }
  }
  EXPECT_TRUE(person_head);
  EXPECT_TRUE(person_body);
}

TEST(GroupedDomainTest, CoAuthorBindingsUnlockAmazon) {
  // garcia only ever appears as a CoAuthor at bn; with the shared domain
  // the framework queries amazon(garcia, ...) and reaches
  // distributed_dbs — its price pair is in the answer.
  GroupedCatalog grouped = MakeGroupedCatalog();
  exec::QueryAnswerer answerer(&grouped.catalog, grouped.domains);
  auto report = answerer.Answer(PriceQuery());
  ASSERT_TRUE(report.ok()) << report.status();
  auto decoded = report->exec.answer.DecodedRows();
  EXPECT_EQ(std::set<Row>(decoded.begin(), decoded.end()),
            (std::set<Row>{{S("db_systems"), S("95"), S("89")},
                           {S("distributed_dbs"), S("110"), S("99")}}));
  // And the obtainable answer equals the complete answer here.
  auto complete = exec::CompleteAnswer(PriceQuery(), grouped.catalog);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(report->exec.answer == *complete);
}

TEST(GroupedDomainTest, WithoutGroupingTheChainBreaks) {
  // Same catalog, default one-domain-per-attribute map: CoAuthor values
  // never reach the Author domain, so amazon(garcia) is never asked and
  // distributed_dbs has no PriceA.
  GroupedCatalog grouped = MakeGroupedCatalog();
  exec::QueryAnswerer answerer(&grouped.catalog, planner::DomainMap());
  auto report = answerer.Answer(PriceQuery());
  ASSERT_TRUE(report.ok()) << report.status();
  auto decoded = report->exec.answer.DecodedRows();
  EXPECT_EQ(std::set<Row>(decoded.begin(), decoded.end()),
            (std::set<Row>{{S("db_systems"), S("95"), S("89")}}));
}

TEST(GroupedDomainTest, FindRelRunsInDomainSpace) {
  // With grouping, bn is relevant to the {amazon} connection: amazon's
  // kernel {Author} folds to the person domain, which bn frees (via
  // CoAuthor). Without grouping, bn cannot contribute Author bindings
  // and is correctly excluded.
  GroupedCatalog grouped = MakeGroupedCatalog();
  planner::Query query({{"Publisher", S("ph")}}, {"PriceA"},
                       {planner::Connection({"amazon"})});
  auto with_grouping = planner::FindRelevantViews(
      query, query.connections()[0], grouped.views, grouped.domains);
  ASSERT_TRUE(with_grouping.ok());
  EXPECT_TRUE(with_grouping->relevant_views.count("bn"))
      << with_grouping->ToString();

  auto without_grouping = planner::FindRelevantViews(
      query, query.connections()[0], grouped.views, planner::DomainMap());
  ASSERT_TRUE(without_grouping.ok());
  EXPECT_FALSE(without_grouping->relevant_views.count("bn"))
      << without_grouping->ToString();
}

TEST(GroupedDomainTest, OptimizedPlanStillFindsEverything) {
  // The planner's trimming must stay sound under grouping: optimized and
  // unoptimized executions agree.
  GroupedCatalog grouped = MakeGroupedCatalog();
  exec::QueryAnswerer answerer(&grouped.catalog, grouped.domains);
  auto optimized = answerer.Answer(PriceQuery());
  auto unoptimized = answerer.AnswerUnoptimized(PriceQuery());
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(unoptimized.ok());
  EXPECT_TRUE(optimized->exec.answer == unoptimized->exec.answer);
}

TEST(MinAnswersTest, StopsEarlyOnceTargetReached) {
  GroupedCatalog grouped = MakeGroupedCatalog();
  exec::QueryAnswerer answerer(&grouped.catalog, grouped.domains);
  exec::ExecOptions options;
  options.min_answers = 1;
  auto report = answerer.Answer(PriceQuery(), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->exec.answer.size(), 1u);
  EXPECT_TRUE(report->exec.budget_exhausted);

  auto full = answerer.Answer(PriceQuery());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(report->exec.log.total_queries(),
            full->exec.log.total_queries());
  for (const Row& row : report->exec.answer.DecodedRows()) {
    EXPECT_TRUE(full->exec.answer.Contains(row));
  }
}

TEST(MinAnswersTest, UnreachableTargetRunsToFixpoint) {
  GroupedCatalog grouped = MakeGroupedCatalog();
  exec::QueryAnswerer answerer(&grouped.catalog, grouped.domains);
  exec::ExecOptions options;
  options.min_answers = 1000;
  auto report = answerer.Answer(PriceQuery(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exec.answer.size(), 2u);
  EXPECT_FALSE(report->exec.budget_exhausted);
}

}  // namespace
}  // namespace limcap
