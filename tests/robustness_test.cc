// Robustness against misbehaving sources: wrappers in the wild return
// supersets, garbage arities, or nothing at all. The evaluator must stay
// sound (never exceed the complete answer) and fail cleanly where
// soundness cannot be preserved.

#include <gtest/gtest.h>

#include <memory>

#include "capability/in_memory_source.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap::exec {
namespace {

using capability::InMemorySource;
using capability::Source;
using capability::SourceCatalog;
using capability::SourceQuery;
using capability::SourceView;
using relational::Relation;

/// Ignores the query's bindings and returns its whole extent — a sloppy
/// wrapper that over-answers (still type-correct).
class SloppySource : public Source {
 public:
  SloppySource(SourceView view, Relation data)
      : view_(std::move(view)), data_(std::move(data)) {}
  const SourceView& view() const override { return view_; }
  Result<Relation> Execute(const SourceQuery& query) override {
    if (!query.SatisfiedTemplate(view_).has_value()) {
      return Status::CapabilityViolation("missing bindings");
    }
    // Also ignores the dictionary contract: the answer keeps this
    // source's private dictionary, forcing the caller to re-key it.
    return data_;
  }

 private:
  SourceView view_;
  Relation data_;
};

/// Returns rows of the wrong arity.
class GarbageSource : public Source {
 public:
  explicit GarbageSource(SourceView view) : view_(std::move(view)) {}
  const SourceView& view() const override { return view_; }
  Result<Relation> Execute(const SourceQuery&) override {
    Relation wrong(relational::Schema::MakeUnsafe({"Only"}));
    wrong.InsertUnsafe({Value::String("junk")});
    return wrong;
  }

 private:
  SourceView view_;
};

SourceCatalog RebuildWith(const paperdata::PaperExample& example,
                          const std::string& replace,
                          std::unique_ptr<Source> replacement) {
  SourceCatalog catalog;
  for (const auto& view : example.views) {
    if (view.name() == replace) {
      catalog.RegisterUnsafe(std::move(replacement));
      continue;
    }
    auto* source = dynamic_cast<InMemorySource*>(
        example.catalog.Find(view.name()).value());
    catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data())));
  }
  return catalog;
}

TEST(RobustnessTest, SloppySourceCannotInflateTheAnswer) {
  // v3 returns its whole extent on every query. The evaluator absorbs
  // the extra tuples as genuine source tuples; the answer may grow
  // toward — but never beyond — the complete answer.
  auto example = paperdata::MakeExample21();
  auto* v3 = dynamic_cast<InMemorySource*>(
      example.catalog.Find("v3").value());
  SourceCatalog catalog = RebuildWith(
      example, "v3",
      std::make_unique<SloppySource>(v3->view(), v3->data()));
  QueryAnswerer answerer(&catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok()) << report.status();
  auto complete = CompleteAnswer(example.query, example.catalog);
  ASSERT_TRUE(complete.ok());
  for (const auto& row : report->exec.answer.DecodedRows()) {
    EXPECT_TRUE(complete->Contains(row));
  }
  // In Example 2.1 the extra v3 tuples add nothing: c3/c1 were reachable
  // anyway.
  EXPECT_EQ(report->exec.answer.size(), 3u);
}

TEST(RobustnessTest, GarbageAritySurfacesAsError) {
  auto example = paperdata::MakeExample21();
  SourceCatalog catalog = RebuildWith(
      example, "v3",
      std::make_unique<GarbageSource>(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff")));
  QueryAnswerer answerer(&catalog, example.domains);
  auto report = answerer.Answer(example.query);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, EmptySourcesYieldEmptyAnswerQuickly) {
  // All sources empty: the evaluator terminates after probing what the
  // inputs allow, with no answers and no spinning.
  SourceCatalog catalog;
  std::vector<SourceView> views;
  for (const auto& view : paperdata::MakeExample21().views) {
    views.push_back(view);
    catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, Relation(view.schema()))));
  }
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->exec.answer.empty());
  // Only v1 is queryable from the initial song binding.
  EXPECT_EQ(report->exec.log.total_queries(), 1u);
  EXPECT_LE(report->exec.rounds, 2u);
}

TEST(RobustnessTest, SelfFeedingSourceTerminates) {
  // A source whose outputs feed its own binding requirement (Cd -> Cd
  // successor chain): evaluation must reach the fixpoint and stop even
  // though every answer unlocks another query.
  SourceCatalog catalog;
  SourceView next = SourceView::MakeUnsafe("next", {"Cd", "NextCd"}, "bf");
  Relation data(next.schema());
  for (int i = 0; i < 30; ++i) {
    data.InsertUnsafe({Value::String("c" + std::to_string(i)),
                       Value::String("c" + std::to_string(i + 1))});
  }
  catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(next, std::move(data))));

  planner::DomainMap domains;
  domains.SetDomain("Cd", "cd");
  domains.SetDomain("NextCd", "cd");  // successor feeds the same domain
  planner::Query query({{"Cd", Value::String("c0")}}, {"NextCd"},
                       {planner::Connection({"next"})});
  QueryAnswerer answerer(&catalog, domains);
  auto report = answerer.Answer(query);
  ASSERT_TRUE(report.ok()) << report.status();
  // Only the c0 row satisfies the input constraint in the answer...
  EXPECT_EQ(report->exec.answer.size(), 1u);
  // ...but the whole chain was walked: 31 distinct queries (c0..c30).
  EXPECT_EQ(report->exec.log.total_queries(), 31u);
}

}  // namespace
}  // namespace limcap::exec
