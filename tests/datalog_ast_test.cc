#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/dependency_graph.h"
#include "datalog/parser.h"
#include "datalog/safety.h"

namespace limcap::datalog {
namespace {

Rule R(const char* text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return rule.value_or(Rule{});
}

TEST(TermTest, VariableAndConstant) {
  Term var = Term::Var("C");
  EXPECT_TRUE(var.is_variable());
  EXPECT_EQ(var.var(), "C");
  EXPECT_EQ(var.ToString(), "C");

  Term constant = Term::Constant(Value::String("t1"));
  EXPECT_TRUE(constant.is_constant());
  EXPECT_EQ(constant.ToString(), "t1");
  EXPECT_NE(var, constant);
  EXPECT_EQ(Term::Var("C"), Term::Var("C"));
}

TEST(AtomTest, VariablesFirstOccurrenceOrder) {
  Atom atom{"p", {Term::Var("B"), Term::Constant(Value::Int64(1)),
                  Term::Var("A"), Term::Var("B")}};
  EXPECT_EQ(atom.Variables(), (std::vector<std::string>{"B", "A"}));
  EXPECT_EQ(atom.ToString(), "p(B, 1, A, B)");
}

TEST(RuleTest, ToStringRoundTrip) {
  Rule rule = R("ans(P) :- v1^(t1, C), v3^(C, A, P).");
  EXPECT_EQ(rule.ToString(), "ans(P) :- v1^(t1, C), v3^(C, A, P).");
  Rule fact = R("song(t1).");
  EXPECT_TRUE(fact.is_fact());
  EXPECT_EQ(fact.ToString(), "song(t1).");
}

TEST(RuleTest, CanonicalStringIsAlphaInvariant) {
  Rule a = R("ans(P) :- v1^(t1, C), v3^(C, A, P).");
  Rule b = R("ans(X) :- v1^(t1, Y), v3^(Y, Z, X).");
  Rule c = R("ans(X) :- v1^(t2, Y), v3^(Y, Z, X).");  // different constant
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
  EXPECT_NE(a.CanonicalString(), c.CanonicalString());
}

TEST(ProgramTest, IdbEdbClassification) {
  auto program = ParseProgram(
      "ans(P) :- v1^(t1, C), v3^(C, A, P).\n"
      "v1^(S, C) :- song(S), v1(S, C).\n"
      "v3^(C, A, P) :- cd(C), v3(C, A, P).\n"
      "cd(C) :- song(S), v1(S, C).\n"
      "song(t1).\n");
  ASSERT_TRUE(program.ok()) << program.status();
  auto idb = program->IdbPredicates();
  auto edb = program->EdbPredicates();
  EXPECT_TRUE(idb.count("ans"));
  EXPECT_TRUE(idb.count("v1^"));
  EXPECT_TRUE(idb.count("song"));
  EXPECT_TRUE(edb.count("v1"));
  EXPECT_TRUE(edb.count("v3"));
  EXPECT_FALSE(edb.count("song"));
  EXPECT_EQ(program->AllPredicates().size(), 7u);
}

TEST(ProgramTest, ArityConsistency) {
  auto bad = ParseProgram("p(X) :- q(X).\nq(X, Y) :- p(X).\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->PredicateArities().ok());

  auto good = ParseProgram("p(X) :- q(X, X).\nq(X, Y) :- r(X, Y).\n");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->PredicateArities().ok());
}

TEST(ProgramTest, CanonicalComparisonIgnoresOrderAndNames) {
  auto a = ParseProgram("p(X) :- q(X).\nr(Y) :- p(Y).\n");
  auto b = ParseProgram("r(Z) :- p(Z).\np(W) :- q(W).\n");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(ParserTest, ConstantsAndVariables) {
  Rule rule = R("p(X, t1, 42, 2.5, \"Hello World\", $15) :- q(X).");
  ASSERT_EQ(rule.head.terms.size(), 6u);
  EXPECT_TRUE(rule.head.terms[0].is_variable());
  EXPECT_EQ(rule.head.terms[1].constant(), Value::String("t1"));
  EXPECT_EQ(rule.head.terms[2].constant(), Value::Int64(42));
  EXPECT_EQ(rule.head.terms[3].constant(), Value::Double(2.5));
  EXPECT_EQ(rule.head.terms[4].constant(), Value::String("Hello World"));
  EXPECT_EQ(rule.head.terms[5].constant(), Value::String("$15"));
}

TEST(ParserTest, NegativeNumbers) {
  Rule rule = R("p(-3).");
  EXPECT_EQ(rule.head.terms[0].constant(), Value::Int64(-3));
}

TEST(ParserTest, EmptyBodyFactForms) {
  EXPECT_TRUE(R("song(t1).").is_fact());
  EXPECT_TRUE(R("song(t1) :- .").is_fact());
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto program = ParseProgram(
      "% a comment\n"
      "p(X) :- q(X). // trailing\n"
      "\n"
      "q(a).\n");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->size(), 2u);
}

TEST(ParserTest, HatPredicates) {
  Rule rule = R("v1^(S, C) :- song(S), v1(S, C).");
  EXPECT_EQ(rule.head.predicate, "v1^");
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto bad = ParseProgram("p(X) :- q(X)\nr(a).\n");  // missing '.'
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseRule("p(a). extra").ok());
  EXPECT_FALSE(ParseProgram("p(a,).").ok());
  EXPECT_FALSE(ParseProgram("p(.").ok());
  EXPECT_FALSE(ParseProgram("(a).").ok());
}

TEST(ParserTest, ZeroArityAtom) {
  Rule rule = R("done() :- p(X).");
  EXPECT_EQ(rule.head.arity(), 0u);
}

TEST(SafetyTest, HeadVariableMustAppearInBody) {
  EXPECT_TRUE(CheckRuleSafety(R("p(X) :- q(X).")).ok());
  EXPECT_FALSE(CheckRuleSafety(R("p(X, Y) :- q(X).")).ok());
  EXPECT_TRUE(CheckRuleSafety(R("p(a).")).ok());
  EXPECT_FALSE(CheckRuleSafety(R("p(X).")).ok());
}

TEST(SafetyTest, ProgramSafety) {
  auto safe = ParseProgram("p(X) :- q(X).\nq(a).\n");
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(CheckSafety(*safe).ok());

  auto unsafe_program = ParseProgram("p(X) :- q(X).\nq(Y).\n");
  ASSERT_TRUE(unsafe_program.ok());
  EXPECT_FALSE(CheckSafety(*unsafe_program).ok());
}

TEST(DependencyGraphTest, ReachableFrom) {
  auto program = ParseProgram(
      "ans(X) :- a(X).\n"
      "a(X) :- b(X), e1(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- e2(X).\n");
  ASSERT_TRUE(program.ok());
  DependencyGraph graph(*program);
  auto reachable = graph.ReachableFrom("ans");
  EXPECT_TRUE(reachable.count("a"));
  EXPECT_TRUE(reachable.count("b"));
  EXPECT_TRUE(reachable.count("e1"));
  EXPECT_FALSE(reachable.count("c"));
  EXPECT_FALSE(reachable.count("e2"));
  EXPECT_TRUE(graph.ReachableFrom("nonexistent").empty());
}

TEST(DependencyGraphTest, RecursionDetection) {
  auto recursive = ParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Z) :- tc(X, Y), e(Y, Z).\n");
  ASSERT_TRUE(recursive.ok());
  DependencyGraph graph(*recursive);
  EXPECT_TRUE(graph.IsRecursive());
  EXPECT_TRUE(graph.IsRecursivePredicate("tc"));
  EXPECT_FALSE(graph.IsRecursivePredicate("e"));

  auto flat = ParseProgram("p(X) :- q(X).\n");
  ASSERT_TRUE(flat.ok());
  EXPECT_FALSE(DependencyGraph(*flat).IsRecursive());
}

TEST(DependencyGraphTest, MutualRecursionScc) {
  auto program = ParseProgram(
      "a(X) :- b(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- a(X), e(X).\n");
  ASSERT_TRUE(program.ok());
  DependencyGraph graph(*program);
  EXPECT_TRUE(graph.IsRecursivePredicate("a"));
  EXPECT_TRUE(graph.IsRecursivePredicate("b"));
  EXPECT_FALSE(graph.IsRecursivePredicate("c"));
  bool found_pair = false;
  for (const auto& scc : graph.StronglyConnectedComponents()) {
    if (scc == std::vector<std::string>{"a", "b"}) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
}

}  // namespace
}  // namespace limcap::datalog
