// Observability tests: rounds, datalog statistics, and trace-table
// rendering of real executions.

#include <gtest/gtest.h>

#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap::exec {
namespace {

TEST(ExecStatsTest, Example21RoundsAndStats) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.AnswerUnoptimized(example.query);
  ASSERT_TRUE(report.ok());
  // The Example 2.1 chain needs several fetch-derive rounds (the binding
  // chain is t1 -> c1 -> a1 -> c2 -> t2 -> c3 -> a3 -> c4).
  EXPECT_GE(report->exec.rounds, 5u);
  EXPECT_GT(report->exec.datalog_stats.iterations, 0u);
  EXPECT_GT(report->exec.datalog_stats.facts_derived, 0u);
  EXPECT_GT(report->exec.datalog_stats.matches,
            report->exec.answer.size());
  // The trace table renders every query, productive or not.
  std::string table = report->exec.log.ToTable(/*productive_only=*/false);
  EXPECT_NE(table.find("v1(t1, C)"), std::string::npos);
  EXPECT_NE(table.find("v3(c4, A, P)"), std::string::npos);  // empty probe
}

TEST(ExecStatsTest, StoreExposesEverything) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.AnswerUnoptimized(example.query);
  ASSERT_TRUE(report.ok());
  auto predicates = report->exec.store.Predicates();
  // EDB views, alpha predicates, domains and the goal all present.
  for (const char* predicate :
       {"v1", "v1^", "v2", "v2^", "v3", "v3^", "v4", "v4^", "song", "cd",
        "artist", "price", "ans"}) {
    EXPECT_TRUE(std::find(predicates.begin(), predicates.end(),
                          predicate) != predicates.end())
        << predicate;
  }
  // EDB facts match what the trace returned.
  EXPECT_EQ(report->exec.store.Count("v1"), 2u);
  EXPECT_EQ(report->exec.store.Count("v4"), 3u);  // <c5,...> unobtainable
}

TEST(ExecStatsTest, SemiNaiveDoesLessWorkEndToEnd) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions naive_options;
  naive_options.mode = datalog::Evaluator::Mode::kNaive;
  auto naive = answerer.Answer(example.query, naive_options);
  auto semi = answerer.Answer(example.query);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_TRUE(naive->exec.answer == semi->exec.answer);
  // Identical source behavior; strictly fewer matcher invocations for
  // semi-naive on this multi-round workload.
  EXPECT_EQ(naive->exec.log.total_queries(),
            semi->exec.log.total_queries());
  EXPECT_GE(naive->exec.datalog_stats.matches,
            semi->exec.datalog_stats.matches);
}

TEST(FetchStrategyTest, EagerReachesTheSameFixpoint) {
  // Eager (one query per derive) and round-based scheduling ask the same
  // query set — the fixpoint's domains determine it — and compute the
  // same answer; only the round structure differs.
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions eager;
  eager.strategy = FetchStrategy::kEager;
  auto a = answerer.Answer(example.query, eager);
  auto b = answerer.Answer(example.query);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->exec.answer == b->exec.answer);
  EXPECT_EQ(a->exec.log.total_queries(), b->exec.log.total_queries());
  // Eager: one query per round; round-based groups them.
  EXPECT_EQ(a->exec.rounds, a->exec.log.total_queries());
  EXPECT_LT(b->exec.rounds, b->exec.log.total_queries());
}

TEST(FetchStrategyTest, EagerWithMinAnswersCanStopSooner) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions eager;
  eager.strategy = FetchStrategy::kEager;
  eager.min_answers = 1;
  auto targeted = answerer.Answer(example.query, eager);
  ASSERT_TRUE(targeted.ok());
  EXPECT_GE(targeted->exec.answer.size(), 1u);
  ExecOptions round_based;
  round_based.min_answers = 1;
  auto rounds = answerer.Answer(example.query, round_based);
  ASSERT_TRUE(rounds.ok());
  // Eager checks the goal after every single query, so it never needs
  // more queries than the round-based variant to hit the target.
  EXPECT_LE(targeted->exec.log.total_queries(),
            rounds->exec.log.total_queries());
}

TEST(ExecStatsTest, PerSourceCountsMatchTrace) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok());
  std::size_t total = 0;
  for (const auto& [source, count] : report->exec.log.PerSourceCounts()) {
    EXPECT_EQ(count, report->exec.log.QueriesTo(source));
    total += count;
  }
  EXPECT_EQ(total, report->exec.log.total_queries());
}

}  // namespace
}  // namespace limcap::exec
