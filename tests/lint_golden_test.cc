// Golden-file tests for limcap_lint's diagnostics: each case runs the
// lint driver over checked-in inputs and compares the rendered report
// byte-for-byte with a checked-in expectation. Regenerate an expectation
// with the CLI, e.g.
//
//   build/tools/limcap_lint --catalog examples/catalogs/example21.cat
//       --program tests/golden/unbindable.dl > tests/golden/unbindable.out

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.h"

#ifndef LIMCAP_GOLDEN_DIR
#error "LIMCAP_GOLDEN_DIR must be defined by the build"
#endif
#ifndef LIMCAP_EXAMPLES_DIR
#error "LIMCAP_EXAMPLES_DIR must be defined by the build"
#endif

namespace limcap::analysis {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string Golden(const std::string& name) {
  return std::string(LIMCAP_GOLDEN_DIR) + "/" + name;
}

std::string Example(const std::string& name) {
  return std::string(LIMCAP_EXAMPLES_DIR) + "/" + name;
}

/// Lints `program` (from tests/golden) against Example 2.1's catalog and
/// compares with the named expectation.
void ExpectProgramGolden(const std::string& program_file,
                         const std::string& expected_file,
                         bool expect_errors, bool json = false) {
  LintRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.has_program = true;
  request.program_text = ReadFile(Golden(program_file));
  request.json = json;
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered, ReadFile(Golden(expected_file)));
  EXPECT_EQ(report->analysis.diagnostics.has_errors(), expect_errors);
}

TEST(LintGoldenTest, UnbindableViewAtom) {
  // The ISSUE's headline case: a source-view atom whose binding pattern
  // no body ordering can satisfy -> LC020, an error.
  ExpectProgramGolden("unbindable.dl", "unbindable.out",
                      /*expect_errors=*/true);
}

TEST(LintGoldenTest, UnbindableViewAtomJson) {
  ExpectProgramGolden("unbindable.dl", "unbindable.json.out",
                      /*expect_errors=*/true, /*json=*/true);
}

TEST(LintGoldenTest, DeadRule) {
  ExpectProgramGolden("dead_rule.dl", "dead_rule.out",
                      /*expect_errors=*/false);
}

TEST(LintGoldenTest, UnsafeHeadVariable) {
  ExpectProgramGolden("unsafe_head.dl", "unsafe_head.out",
                      /*expect_errors=*/true);
}

TEST(LintGoldenTest, ArityClash) {
  ExpectProgramGolden("arity_clash.dl", "arity_clash.out",
                      /*expect_errors=*/true);
}

TEST(LintGoldenTest, Example21QueryIsErrorFree) {
  LintRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Example("example21.q"));
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered, ReadFile(Golden("example21_query.out")));
  EXPECT_FALSE(report->analysis.diagnostics.has_errors());
}

TEST(LintGoldenTest, UnreachableViewInQueryMode) {
  // Example 2.1 plus v6 (needs Isbn, which nothing supplies) and a {v6}
  // connection: the full Π(Q, V) carries an unbindable v6 atom (LC020).
  LintRequest request;
  request.catalog_text = ReadFile(Golden("isbn_view.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Golden("isbn_view.q"));
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered, ReadFile(Golden("isbn_view.out")));
  EXPECT_TRUE(report->analysis.diagnostics.has_errors());
}

// --deep: the binding-flow pass (LC030-LC032) plus its certificate dump.

TEST(LintGoldenTest, DeepExample21Query) {
  LintRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Example("example21.q"));
  request.deep = true;
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered, ReadFile(Golden("deep_example21_query.out")));
  EXPECT_TRUE(report->analysis.binding_flow_ran);
  EXPECT_FALSE(report->analysis.diagnostics.has_errors());
}

TEST(LintGoldenTest, DeepExample21QueryJson) {
  LintRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Example("example21.q"));
  request.deep = true;
  request.json = true;
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered,
            ReadFile(Golden("deep_example21_query.json.out")));
  // Schema: the deep dump is a leading field of the JSON object, before
  // the diagnostics array.
  EXPECT_NE(report->rendered.find("\"binding_flow\":{\"channels\":["),
            std::string::npos);
  EXPECT_NE(report->rendered.find("\"kind\":\"witness\""),
            std::string::npos);
}

TEST(LintGoldenTest, DeepBfChainQuery) {
  // The bf-chain fixture exercises all three verdicts at once: the
  // chain's channels are relevant, v3 is unreachable (LC031 + an LC020
  // error from the unbindable atom), v4 statically irrelevant (LC030).
  LintRequest request;
  request.catalog_text = ReadFile(Golden("bf_chain.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Golden("bf_chain.q"));
  request.deep = true;
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered, ReadFile(Golden("deep_bf_chain.out")));
  EXPECT_TRUE(report->analysis.diagnostics.has_errors());
}

TEST(LintGoldenTest, DeepBfChainQueryJson) {
  LintRequest request;
  request.catalog_text = ReadFile(Golden("bf_chain.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Golden("bf_chain.q"));
  request.deep = true;
  request.json = true;
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered, ReadFile(Golden("deep_bf_chain.json.out")));
  EXPECT_NE(report->rendered.find("\"kind\":\"unreachability\""),
            std::string::npos);
  EXPECT_NE(report->rendered.find("\"kind\":\"irrelevance\""),
            std::string::npos);
  EXPECT_NE(report->rendered.find("\"missing_domain\":\"domD\""),
            std::string::npos);
}

TEST(LintGoldenTest, ShallowRunsCarryNoDeepSection) {
  LintRequest request;
  request.catalog_text = ReadFile(Example("example21.cat"));
  request.has_query = true;
  request.query_text = ReadFile(Example("example21.q"));
  auto report = Lint(request);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->analysis.binding_flow_ran);
  EXPECT_EQ(report->rendered.find("binding flow"), std::string::npos);

  request.json = true;
  auto json = Lint(request);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->rendered.find("\"binding_flow\""), std::string::npos);
}

TEST(LintGoldenTest, CatalogOnlyMode) {
  LintRequest request;
  request.catalog_text = ReadFile(Golden("isbn_view.cat"));
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->rendered,
            ReadFile(Golden("isbn_view_catalog_only.out")));
  EXPECT_FALSE(report->analysis.diagnostics.has_errors());
}

}  // namespace
}  // namespace limcap::analysis
