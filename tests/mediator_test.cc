#include <gtest/gtest.h>

#include "exec/oracle.h"
#include "mediator/mediator.h"
#include "paperdata/paper_examples.h"

namespace limcap::mediator {
namespace {

using paperdata::MakeExample21;
using paperdata::PaperExample;
using planner::Connection;

MediatorView CdInfoView() {
  MediatorView view;
  view.name = "cd_info";
  view.exported_attributes = {"Song", "Cd", "Price"};
  view.definitions = {Connection({"v1", "v3"}), Connection({"v1", "v4"}),
                      Connection({"v2", "v3"}), Connection({"v2", "v4"})};
  return view;
}

TEST(MediatorTest, DefineValidates) {
  PaperExample example = MakeExample21();
  Mediator mediator(&example.catalog, example.domains);

  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  EXPECT_TRUE(mediator.Contains("cd_info"));
  EXPECT_TRUE(mediator.Find("cd_info").ok());
  EXPECT_FALSE(mediator.Find("other").ok());

  // Duplicate name.
  EXPECT_EQ(mediator.Define(CdInfoView()).code(),
            StatusCode::kAlreadyExists);

  // Unknown source view.
  MediatorView bad = CdInfoView();
  bad.name = "bad1";
  bad.definitions.push_back(Connection({"v9"}));
  EXPECT_FALSE(mediator.Define(bad).ok());

  // Exported attribute not covered by a definition.
  bad = CdInfoView();
  bad.name = "bad2";
  bad.definitions.push_back(Connection({"v1"}));  // v1 has no Price
  EXPECT_FALSE(mediator.Define(bad).ok());

  // No definitions / no exports / duplicate export / repeated source.
  bad = MediatorView{"bad3", {"Song"}, {}};
  EXPECT_FALSE(mediator.Define(bad).ok());
  bad = MediatorView{"bad4", {}, {Connection({"v1"})}};
  EXPECT_FALSE(mediator.Define(bad).ok());
  bad = MediatorView{"bad5", {"Song", "Song"}, {Connection({"v1"})}};
  EXPECT_FALSE(mediator.Define(bad).ok());
  bad = MediatorView{"bad6", {"Song"}, {Connection({"v1", "v1"})}};
  EXPECT_FALSE(mediator.Define(bad).ok());
}

TEST(MediatorTest, ExpandValidates) {
  PaperExample example = MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());

  // Valid expansion: one connection per definition.
  MediatorQuery query{"cd_info", {{"Song", Value::String("t1")}}, {"Price"}};
  auto expanded = mediator.Expand(query);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_EQ(expanded->connections().size(), 4u);
  EXPECT_TRUE(expanded->Validate(example.catalog).ok());

  // Unknown view, unexported selection/output, overlap, no outputs.
  EXPECT_FALSE(mediator.Expand({"nope", {}, {"Price"}}).ok());
  EXPECT_FALSE(mediator
                   .Expand({"cd_info", {{"Artist", Value::String("a1")}},
                            {"Price"}})
                   .ok());
  EXPECT_FALSE(mediator.Expand({"cd_info", {}, {"Artist"}}).ok());
  EXPECT_FALSE(mediator
                   .Expand({"cd_info", {{"Price", Value::String("$1")}},
                            {"Price"}})
                   .ok());
  EXPECT_FALSE(mediator.Expand({"cd_info", {}, {}}).ok());
}

TEST(MediatorTest, AnswerMatchesPaperExample) {
  // The mediator front end reproduces Example 2.1's headline numbers.
  PaperExample example = MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());

  auto report = mediator.Answer(
      {"cd_info", {{"Song", Value::String("t1")}}, {"Price"}});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.answer.size(), 3u);
  EXPECT_TRUE(report->exec.answer.Contains({Value::String("$10")}));

  // A different projection through the same view: which CDs carry t2?
  auto cds = mediator.Answer(
      {"cd_info", {{"Song", Value::String("t2")}}, {"Cd", "Price"}});
  ASSERT_TRUE(cds.ok()) << cds.status();
  // t2 is on c3 ($14 via v3) and on c2 ($12 via v4).
  EXPECT_EQ(cds->exec.answer.size(), 2u);
  EXPECT_TRUE(cds->exec.answer.Contains(
      {Value::String("c3"), Value::String("$14")}));
  EXPECT_TRUE(cds->exec.answer.Contains(
      {Value::String("c2"), Value::String("$12")}));
}

TEST(MediatorTest, SessionMetricsAggregateAcrossQueries) {
  PaperExample example = MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  EXPECT_TRUE(mediator.session_metrics().empty());

  ASSERT_TRUE(mediator
                  .Answer({"cd_info",
                           {{"Song", Value::String("t1")}},
                           {"Price"}})
                  .ok());
  const double first_rows =
      mediator.session_metrics().Get(obs::metric::kAnswerRows);
  EXPECT_EQ(first_rows, 3.0);

  // A caller-supplied registry receives this query's metrics only; the
  // session keeps accumulating.
  obs::MetricsRegistry caller;
  caller.Add(obs::metric::kAnswerRows, 100);  // pre-existing contents
  exec::ExecOptions options;
  options.metrics = &caller;
  ASSERT_TRUE(mediator
                  .Answer({"cd_info",
                           {{"Song", Value::String("t2")}},
                           {"Cd", "Price"}},
                          options)
                  .ok());
  EXPECT_EQ(caller.Get(obs::metric::kAnswerRows), 102.0);
  EXPECT_EQ(mediator.session_metrics().Get(obs::metric::kAnswerRows), 5.0);
  EXPECT_GT(mediator.session_metrics().Get(obs::metric::kFetchAttempts), 0.0);

  mediator.ResetSessionMetrics();
  EXPECT_TRUE(mediator.session_metrics().empty());
}

TEST(MediatorTest, MultipleViewsCoexist) {
  PaperExample example = MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  MediatorView artists;
  artists.name = "artist_prices";
  artists.exported_attributes = {"Artist", "Price"};
  artists.definitions = {Connection({"v3"}), Connection({"v4"})};
  ASSERT_TRUE(mediator.Define(artists).ok());

  auto report = mediator.Answer(
      {"artist_prices", {{"Artist", Value::String("a1")}}, {"Price"}});
  ASSERT_TRUE(report.ok()) << report.status();
  // a1's obtainable prices require Cd/Artist bindings; with no song given
  // nothing can be queried... except v4 takes Artist bound directly.
  EXPECT_TRUE(report->exec.answer.Contains({Value::String("$13")}));
  EXPECT_TRUE(report->exec.answer.Contains({Value::String("$12")}));
}

}  // namespace
}  // namespace limcap::mediator
