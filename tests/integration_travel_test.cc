// A realistic end-to-end integration scenario: travel sources with
// binding restrictions, shared domains (Home/City are both cities;
// Airport/From/To are all airports), a multi-template source, budget
// knobs, and baseline comparison. Every expectation is hand-computed.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "capability/in_memory_source.h"
#include "exec/baseline_executor.h"
#include "exec/query_answerer.h"
#include "mediator/mediator.h"

namespace limcap {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceView;
using relational::Relation;
using relational::Row;

Value S(const char* text) { return Value::String(text); }
Value I(int64_t v) { return Value::Int64(v); }

class TravelIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    Add("airports", {"City", "Airport"}, {"bf"},
        {{S("sf"), S("sfo")},
         {S("nyc"), S("jfk")},
         {S("nyc"), S("lga")},
         {S("chi"), S("ord")}});
    Add("airlines_from", {"Airport", "Airline"}, {"bf"},
        {{S("sfo"), S("ua")}, {S("jfk"), S("aa")}});
    Add("flights", {"Airline", "From", "To", "Fare"}, {"bbff"},
        {{S("ua"), S("sfo"), S("jfk"), I(300)},
         {S("ua"), S("sfo"), S("ord"), I(250)},
         {S("aa"), S("jfk"), S("sfo"), I(320)},
         {S("aa"), S("jfk"), S("mia"), I(180)}});
    Add("city_of", {"To", "City"}, {"bf"},
        {{S("jfk"), S("nyc")},
         {S("ord"), S("chi")},
         {S("mia"), S("miami")},
         {S("sfo"), S("sf")}});
    // hotels can be searched by city or by hotel name (multi-template).
    Add("hotels", {"City", "Hotel", "Rate"}, {"bff", "fbf"},
        {{S("nyc"), S("plaza"), I(200)},
         {S("chi"), S("drake"), I(150)},
         {S("miami"), S("beach"), I(120)},
         {S("sf"), S("nikko"), I(180)}});
    Add("reviews", {"Hotel", "Stars"}, {"bf"},
        {{S("plaza"), I(4)},
         {S("drake"), I(5)},
         {S("beach"), I(3)},
         {S("nikko"), I(4)}});

    // Shared domains: the binding chains run through them.
    domains_.SetDomain("Home", "city");
    domains_.SetDomain("City", "city");
    domains_.SetDomain("Airport", "airport");
    domains_.SetDomain("From", "airport");
    domains_.SetDomain("To", "airport");
  }

  void Add(const char* name, std::vector<std::string> attributes,
           std::vector<std::string> patterns, std::vector<Row> rows) {
    SourceView view = SourceView::MakeUnsafe(name, std::move(attributes),
                                             std::move(patterns));
    Relation data(view.schema());
    for (Row& row : rows) data.InsertUnsafe(std::move(row));
    views_.push_back(view);
    catalog_.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, std::move(data))));
  }

  std::set<Row> Answer(const planner::Query& query,
                       const exec::ExecOptions& options = {}) {
    exec::QueryAnswerer answerer(&catalog_, domains_);
    auto report = answerer.Answer(query, options);
    EXPECT_TRUE(report.ok()) << report.status();
    if (!report.ok()) return {};
    last_queries_ = report->exec.log.total_queries();
    auto decoded = report->exec.answer.DecodedRows();
    return std::set<Row>(decoded.begin(), decoded.end());
  }

  SourceCatalog catalog_;
  std::vector<SourceView> views_;
  planner::DomainMap domains_;
  std::size_t last_queries_ = 0;
};

TEST_F(TravelIntegration, HotelsEverywhereReachable) {
  // Starting from Home = sf, the chain airports -> airlines_from ->
  // flights -> city_of widens the city domain to {sf, nyc, chi, miami};
  // hotels + reviews then cover all four.
  planner::Query query({{"Home", S("sf")}}, {"City", "Hotel", "Stars"},
                       {planner::Connection({"hotels", "reviews"})});
  ASSERT_TRUE(query.Validate(catalog_, domains_).ok());
  EXPECT_EQ(Answer(query),
            (std::set<Row>{{S("nyc"), S("plaza"), I(4)},
                           {S("chi"), S("drake"), I(5)},
                           {S("miami"), S("beach"), I(3)},
                           {S("sf"), S("nikko"), I(4)}}));
}

TEST_F(TravelIntegration, FaresPerDestinationCity) {
  planner::Query query({{"Home", S("sf")}}, {"To", "City", "Fare"},
                       {planner::Connection({"flights", "city_of"})});
  ASSERT_TRUE(query.Validate(catalog_, domains_).ok());
  EXPECT_EQ(Answer(query),
            (std::set<Row>{{S("jfk"), S("nyc"), I(300)},
                           {S("ord"), S("chi"), I(250)},
                           {S("sfo"), S("sf"), I(320)},
                           {S("mia"), S("miami"), I(180)}}));
}

TEST_F(TravelIntegration, BaselineSkipsEverything) {
  // At the attribute level nothing in {hotels, reviews} is executable
  // from Home alone, so the per-join baseline returns nothing where the
  // framework finds four hotels.
  planner::Query query({{"Home", S("sf")}}, {"City", "Hotel", "Stars"},
                       {planner::Connection({"hotels", "reviews"})});
  exec::BaselineExecutor baseline(&catalog_);
  auto result = baseline.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
  EXPECT_EQ(result->skipped_connections.size(), 1u);
}

TEST_F(TravelIntegration, FiveHopBindingChain) {
  // Stars of hotels in cities served by airlines flying out of the home
  // airports — one connection spanning five sources, none of which is
  // directly queryable except through the chain.
  planner::Query query(
      {{"Home", S("sf")}}, {"Fare", "Stars"},
      {planner::Connection({"flights", "city_of", "hotels", "reviews"})});
  ASSERT_TRUE(query.Validate(catalog_, domains_).ok());
  // Join: flights ⋈ city_of (on To) ⋈ hotels (on City) ⋈ reviews (on
  // Hotel): (300,nyc,plaza,4), (250,chi,drake,5), (320,sf,nikko,4),
  // (180,miami,beach,3).
  EXPECT_EQ(Answer(query), (std::set<Row>{{I(300), I(4)},
                                          {I(250), I(5)},
                                          {I(320), I(4)},
                                          {I(180), I(3)}}));
}

TEST_F(TravelIntegration, MultiTemplateHotelLookupByName) {
  // Entering hotels by name (its second template): no flights needed.
  planner::Query query({{"Hotel", S("plaza")}}, {"City", "Rate"},
                       {planner::Connection({"hotels"})});
  ASSERT_TRUE(query.Validate(catalog_, domains_).ok());
  EXPECT_EQ(Answer(query), (std::set<Row>{{S("nyc"), I(200)}}));
  EXPECT_EQ(last_queries_, 2u);  // hotels(plaza) + hotels(nyc, ...)
}

TEST_F(TravelIntegration, RelevanceTrimsTheFlightSubsystem) {
  // For the by-name lookup, the whole flight subsystem is irrelevant.
  planner::Query query({{"Hotel", S("plaza")}}, {"City", "Rate"},
                       {planner::Connection({"hotels"})});
  auto plan = planner::PlanQuery(query, views_, domains_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->relevance.relevant_union.count("flights"), 0u);
  EXPECT_EQ(plan->relevance.relevant_union.count("airlines_from"), 0u);
  // hotels is there; reviews frees nothing hotels needs... reviews frees
  // Stars only, so it is irrelevant too.
  EXPECT_TRUE(plan->relevance.relevant_union.count("hotels"));
  EXPECT_EQ(plan->relevance.relevant_union.count("reviews"), 0u);
}

TEST_F(TravelIntegration, BudgetedTripPlanning) {
  planner::Query query({{"Home", S("sf")}}, {"City", "Hotel", "Stars"},
                       {planner::Connection({"hotels", "reviews"})});
  exec::ExecOptions options;
  options.min_answers = 1;
  std::set<Row> some = Answer(query, options);
  EXPECT_GE(some.size(), 1u);
  std::size_t targeted_queries = last_queries_;
  std::set<Row> all = Answer(query);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_LE(targeted_queries, last_queries_);
  for (const Row& row : some) EXPECT_TRUE(all.count(row));
}

TEST_F(TravelIntegration, MediatorTripView) {
  mediator::Mediator mediator(&catalog_, domains_);
  mediator::MediatorView trips;
  trips.name = "trips";
  trips.exported_attributes = {"To", "City", "Fare", "Hotel", "Rate"};
  trips.definitions = {
      planner::Connection({"flights", "city_of", "hotels"})};
  ASSERT_TRUE(mediator.Define(trips).ok());
  auto report = mediator.Answer(
      {"trips", {{"Fare", I(250)}}, {"City", "Hotel", "Rate"}});
  ASSERT_TRUE(report.ok()) << report.status();
  // Fare 250 is the ord flight -> chi -> drake at 150... but the query
  // needs Home bindings to get anywhere: no Home input here, so the only
  // initial binding is Fare = 250, which unlocks nothing.
  EXPECT_TRUE(report->exec.answer.empty());

  // With the mediator view exporting Home... it cannot (Home is not a
  // source attribute); instead give the answerer the home city as domain
  // knowledge via a direct query.
  planner::Query query({{"Home", S("sf")}}, {"City", "Hotel", "Rate"},
                       {planner::Connection({"flights", "city_of",
                                             "hotels"})});
  auto full = Answer(query);
  EXPECT_EQ(full.size(), 4u);
}

}  // namespace
}  // namespace limcap
