% Chain connection {v1, v2} answers; {v1, v3, v4} is doomed by v3.
<{A = a0}, {C}, {{v1, v2}, {v1, v3, v4}}>
