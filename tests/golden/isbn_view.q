% The {v6} connection can never be executed: nothing supplies Isbn.
<{Song = t1}, {Price}, {{v1, v3}, {v6}}>
