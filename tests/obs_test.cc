// The observability layer's own tests, in three tiers:
//
//   1. units — Tracer span trees, counters, aggregation helpers, the
//      MetricsRegistry, and the exporters (Chrome trace_event JSON and
//      the text span tree);
//   2. the compile-time disabled-path contract — NullTracer's
//      operations are constexpr no-ops, checkable with static_assert;
//   3. the consistency contract — for every paper example (and a
//      fault-injected run) the recorded span aggregates reconcile
//      EXACTLY with EvalStats, FetchReport, and the MetricsRegistry.
//      The trace is not a parallel bookkeeping system that can drift:
//      anything it claims must equal what the execution reported.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paperdata/paper_examples.h"
#include "runtime/fault_injection.h"

namespace limcap::obs {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using exec::AnswerReport;
using exec::ExecOptions;
using exec::QueryAnswerer;
using runtime::FaultInjectingSource;
using runtime::FaultSpec;

// ---------------------------------------------------------------------------
// Tracer units
// ---------------------------------------------------------------------------

TEST(ObsTracerTest, SpansNestUnderInnermostOpen) {
  Tracer tracer;
  SpanId a = tracer.Begin("a");
  SpanId b = tracer.Begin("b");
  SpanId c = tracer.Instant("c", "leaf");
  tracer.End(b);
  SpanId d = tracer.Begin("d");
  tracer.End(d);
  tracer.End(a);
  ASSERT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.spans()[a].parent, kNoSpan);
  EXPECT_EQ(tracer.spans()[b].parent, a);
  EXPECT_EQ(tracer.spans()[c].parent, b);
  EXPECT_EQ(tracer.spans()[c].detail, "leaf");
  EXPECT_EQ(tracer.spans()[d].parent, a);
  for (const Span& span : tracer.spans()) EXPECT_FALSE(span.open);
}

TEST(ObsTracerTest, EndClosesDanglingChildren) {
  // Malformed nesting must never corrupt the tree: ending a parent
  // closes any child still open.
  Tracer tracer;
  SpanId outer = tracer.Begin("outer");
  tracer.Begin("inner");
  tracer.End(outer);
  EXPECT_FALSE(tracer.spans()[0].open);
  EXPECT_FALSE(tracer.spans()[1].open);
  // The stack is empty again: a new span is a root.
  SpanId next = tracer.Begin("next");
  tracer.End(next);
  EXPECT_EQ(tracer.spans()[next].parent, kNoSpan);
}

TEST(ObsTracerTest, CountersAccumulateAndAggregate) {
  Tracer tracer;
  SpanId a = tracer.Instant("fetch", "v1");
  tracer.Counter(a, "attempts", 2);
  tracer.Counter(a, "attempts", 1);  // accumulates into the same counter
  SpanId b = tracer.Instant("fetch", "v2");
  tracer.Counter(b, "attempts", 4);
  EXPECT_EQ(tracer.CountSpans("fetch"), 2u);
  EXPECT_EQ(tracer.CountSpans("fetch", "v1"), 1u);
  EXPECT_EQ(tracer.SumCounter("fetch", "attempts"), 7.0);
  EXPECT_EQ(tracer.SumCounter("fetch", "v2", "attempts"), 4.0);
  EXPECT_EQ(tracer.SumCounter("fetch", "missing"), 0.0);
}

TEST(ObsTracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(/*enabled=*/false);
  {
    ScopedSpan span(&tracer, "a");
    span.Counter("k", 1);
    span.SetSimulated(0, 10);
    EXPECT_EQ(span.id(), kNoSpan);
    EXPECT_EQ(span.tracer(), nullptr);
  }
  ScopedSpan null_span(nullptr, "b", "detail");
  EXPECT_TRUE(tracer.empty());
}

TEST(ObsTracerTest, SimulatedTimelineIsOptional) {
  Tracer tracer;
  SpanId plain = tracer.Instant("fetch");
  SpanId placed = tracer.Instant("fetch");
  tracer.SetSimulated(placed, 50, 100);
  EXPECT_LT(tracer.spans()[plain].sim_start_ms, 0);
  EXPECT_EQ(tracer.spans()[placed].sim_start_ms, 50);
  EXPECT_EQ(tracer.spans()[placed].sim_dur_ms, 100);
}

// ---------------------------------------------------------------------------
// The compile-time disabled path
// ---------------------------------------------------------------------------

TEST(ObsNullTracerTest, OperationsAreConstexprNoOps) {
  static_assert(!NullTracer::kEnabled);
  static_assert(!NullTracer::enabled());
  static_assert(NullTracer::Begin("a") == kNoSpan);
  static_assert(NullTracer::Instant("b", "c") == kNoSpan);
  static_assert((NullTracer::End(kNoSpan), true));
  static_assert((NullTracer::Counter(kNoSpan, "k", 1), true));
  static_assert((NullTracer::SetSimulated(kNoSpan, 0, 0), true));
  SUCCEED();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, CountersAddAndMerge) {
  MetricsRegistry a;
  EXPECT_TRUE(a.empty());
  a.Add("x");
  a.Add("x", 2);
  EXPECT_EQ(a.Get("x"), 3.0);
  EXPECT_EQ(a.Get("never"), 0.0);
  MetricsRegistry b;
  b.Add("x", 10);
  b.Add("y", 1);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 13.0);
  EXPECT_EQ(a.Get("y"), 1.0);
  a.Clear();
  EXPECT_TRUE(a.empty());
}

TEST(ObsMetricsTest, HistogramsTrackShape) {
  MetricsRegistry registry;
  registry.Observe("ms", 1);
  registry.Observe("ms", 3);
  registry.Observe("ms", 8);
  const MetricsRegistry::Histogram* hist = registry.FindHistogram("ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 12.0);
  EXPECT_EQ(hist->min, 1.0);
  EXPECT_EQ(hist->max, 8.0);
  EXPECT_EQ(hist->mean(), 4.0);
  EXPECT_EQ(registry.FindHistogram("other"), nullptr);
}

TEST(ObsMetricsTest, RendersTextAndJson) {
  MetricsRegistry registry;
  registry.Add("eval.rounds", 17);
  registry.Observe("fetch.duration_ms", 150);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("eval.rounds"), std::string::npos);
  EXPECT_NE(text.find("17"), std::string::npos);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"fetch.duration_ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExportTest, ChromeTraceShape) {
  Tracer tracer;
  SpanId root = tracer.Begin("answer", "hybrid");
  SpanId fetch = tracer.Instant("fetch", "v1");
  tracer.Counter(fetch, "attempts", 2);
  tracer.SetSimulated(fetch, 0, 50);
  tracer.End(root);
  const std::string json = ChromeTraceJson(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"answer\""), std::string::npos);
  EXPECT_NE(json.find("\"hybrid\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\""), std::string::npos);
  // Braces and brackets balance — the cheap well-formedness check the
  // golden test backs up with a real structure comparison.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsExportTest, SpanTreeIndentsByDepth) {
  Tracer tracer;
  SpanId root = tracer.Begin("answer");
  SpanId child = tracer.Begin("plan");
  tracer.End(child);
  tracer.End(root);
  SpanTreeOptions options;
  options.include_wall = false;
  const std::string tree = RenderSpanTree(tracer, options);
  EXPECT_NE(tree.find("answer\n  plan\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The consistency contract
// ---------------------------------------------------------------------------

/// Asserts every clause of the span/stats reconciliation for one
/// answered query.
void ExpectTraceConsistent(const Tracer& tracer,
                           const MetricsRegistry& metrics,
                           const AnswerReport& report) {
  const datalog::EvalStats& eval = report.exec.datalog_stats;
  const runtime::FetchReport& fetch = report.exec.fetch_report;

  // Spans vs EvalStats.
  EXPECT_EQ(tracer.CountSpans("eval.round"), eval.iterations);
  EXPECT_EQ(tracer.SumCounter("eval.round", "activations"),
            double(eval.rule_activations));
  EXPECT_EQ(tracer.SumCounter("eval.round", "facts") +
                tracer.SumCounter("eval.seed", "facts"),
            double(eval.facts_derived));

  // Spans vs FetchReport, in total and per source.
  EXPECT_EQ(tracer.CountSpans("fetch.batch"), fetch.batches);
  EXPECT_EQ(tracer.SumCounter("fetch", "attempts"),
            double(fetch.total_attempts));
  EXPECT_EQ(tracer.SumCounter("fetch", "retries"),
            double(fetch.total_retries));
  EXPECT_EQ(tracer.SumCounter("fetch", "timeouts"),
            double(fetch.total_timeouts));
  EXPECT_EQ(tracer.CountSpans("fetch.coalesced"), fetch.coalesced_hits);
  for (const auto& [source, stats] : fetch.per_source) {
    EXPECT_EQ(tracer.SumCounter("fetch", source, "attempts"),
              double(stats.attempts))
        << "per-source attempts diverge for " << source;
    EXPECT_EQ(tracer.SumCounter("fetch", source, "retries"),
              double(stats.retries))
        << "per-source retries diverge for " << source;
    EXPECT_EQ(tracer.SumCounter("fetch", source, "breaker_skip"),
              double(stats.breaker_skips))
        << "per-source breaker skips diverge for " << source;
  }

  // Metrics vs both.
  EXPECT_EQ(metrics.Get(metric::kEvalRounds), double(eval.iterations));
  EXPECT_EQ(metrics.Get(metric::kEvalActivations),
            double(eval.rule_activations));
  EXPECT_EQ(metrics.Get(metric::kEvalFactsDerived),
            double(eval.facts_derived));
  EXPECT_EQ(metrics.Get(metric::kFetchBatches), double(fetch.batches));
  EXPECT_EQ(metrics.Get(metric::kFetchAttempts),
            double(fetch.total_attempts));
  EXPECT_EQ(metrics.Get(metric::kFetchRetries),
            double(fetch.total_retries));
  EXPECT_EQ(metrics.Get(metric::kFetchCoalesced),
            double(fetch.coalesced_hits));
  EXPECT_EQ(metrics.Get(metric::kFetchFailedViews),
            double(fetch.failed_views.size()));
  EXPECT_EQ(metrics.Get(metric::kExecSourceQueries),
            double(report.exec.log.total_queries()));
  EXPECT_EQ(metrics.Get(metric::kAnswerRows),
            double(report.exec.answer.size()));
  const MetricsRegistry::Histogram* rounds =
      metrics.FindHistogram(metric::kHistRoundActivations);
  if (eval.iterations > 0) {
    ASSERT_NE(rounds, nullptr);
    EXPECT_EQ(rounds->count, eval.iterations);
    EXPECT_EQ(rounds->sum, double(eval.rule_activations));
  }
}

class ObsConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(ObsConsistencyTest, PaperExampleAggregatesReconcile) {
  paperdata::PaperExample example =
      GetParam() == 21   ? paperdata::MakeExample21()
      : GetParam() == 41 ? paperdata::MakeExample41()
      : GetParam() == 51 ? paperdata::MakeExample51()
                         : paperdata::MakeExample52();
  Tracer tracer;
  MetricsRegistry metrics;
  ExecOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(tracer.CountSpans("answer"), 1u);
  EXPECT_EQ(tracer.CountSpans("plan"), 1u);
  ExpectTraceConsistent(tracer, metrics, *report);
}

INSTANTIATE_TEST_SUITE_P(PaperExamples, ObsConsistencyTest,
                         ::testing::Values(21, 41, 51, 52),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Example" + std::to_string(info.param);
                         });

TEST(ObsConsistencyTest, FaultInjectedRunReconciles) {
  // Example 2.1 with v4 permanently down: the trace must account for
  // every retry and the failed view exactly as FetchReport does, and
  // the failure path must not break any reconciliation clause.
  paperdata::PaperExample example = paperdata::MakeExample21();
  SourceCatalog flaky;
  for (const auto& view : example.views) {
    auto* source = dynamic_cast<InMemorySource*>(
        example.catalog.Find(view.name()).value());
    auto copy = std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data()));
    if (view.name() == "v4") {
      FaultSpec spec;
      spec.fail_first_calls = 1000;
      flaky.RegisterUnsafe(
          std::make_unique<FaultInjectingSource>(std::move(copy), spec));
    } else {
      flaky.RegisterUnsafe(std::move(copy));
    }
  }
  Tracer tracer;
  MetricsRegistry metrics;
  ExecOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  options.continue_on_source_error = true;
  options.runtime.retry.max_attempts = 2;
  options.runtime.retry.jitter = 0;
  QueryAnswerer answerer(&flaky, example.domains);
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->exec.fetch_report.degraded());
  EXPECT_GT(report->exec.fetch_report.total_retries, 0u);
  ExpectTraceConsistent(tracer, metrics, *report);
  // The failed fetches are visible as fetch spans with ok=0.
  EXPECT_EQ(tracer.SumCounter("fetch", "v4", "ok"), 0.0);
}

TEST(ObsConsistencyTest, TracingNeverChangesTheAnswer) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto plain = answerer.Answer(example.query);
  Tracer tracer;
  MetricsRegistry metrics;
  ExecOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  auto traced = answerer.Answer(example.query, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(traced.ok());
  EXPECT_TRUE(plain->exec.answer == traced->exec.answer);
  EXPECT_FALSE(tracer.empty());
}

}  // namespace
}  // namespace limcap::obs
