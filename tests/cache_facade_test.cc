#include <gtest/gtest.h>

#include <memory>

#include "capability/caching_source.h"
#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap::exec {
namespace {

using capability::CachingSource;
using capability::InMemorySource;
using capability::SourceCatalog;
using relational::Relation;

Value S(const char* text) { return Value::String(text); }

TEST(CacheFacadeTest, CachedTupleUnlocksEleven) {
  // Example 2.1: caching v4's <c5, a5, $11> tuple recovers the one
  // complete-answer tuple the cold start cannot obtain.
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);

  Relation cached(example.views[3].schema());
  cached.InsertUnsafe({S("c5"), S("a5"), S("$11")});
  auto report =
      answerer.AnswerWithCache(example.query, {{"v4", cached}});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.answer.size(), 4u);
  EXPECT_TRUE(report->exec.answer.Contains({S("$11")}));
}

TEST(CacheFacadeTest, EmptyCacheEqualsColdStart) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto cold = answerer.Answer(example.query);
  auto warm = answerer.AnswerWithCache(example.query, {});
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold->exec.answer == warm->exec.answer);
}

TEST(CacheFacadeTest, UnknownCachedViewFails) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  Relation cached(relational::Schema::MakeUnsafe({"X"}));
  cached.InsertUnsafe({S("x")});
  EXPECT_FALSE(
      answerer.AnswerWithCache(example.query, {{"v9", cached}}).ok());
}

TEST(CacheFacadeTest, CacheUnlocksDroppedConnection) {
  // Example 5.2 without v4: no view is queryable cold, so the planner
  // drops the only connection and the answer is empty. A cached v3 tuple
  // seeds the E domain and revives the whole cycle.
  auto example = paperdata::MakeExample52();
  SourceCatalog catalog;
  std::vector<capability::SourceView> views;
  for (const auto& view : example.views) {
    if (view.name() == "v4") continue;
    auto* source = dynamic_cast<InMemorySource*>(
        example.catalog.Find(view.name()).value());
    views.push_back(view);
    catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data())));
  }
  QueryAnswerer answerer(&catalog, example.domains);

  auto cold = answerer.Answer(example.query);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold->exec.answer.empty());
  EXPECT_EQ(cold->plan.optimized_program.size(), 0u);

  Relation cached(views[2].schema());  // v3(E, F, A)
  cached.InsertUnsafe({S("e1"), S("f1"), S("a1")});
  auto warm = answerer.AnswerWithCache(example.query, {{"v3", cached}});
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->exec.answer.size(), 1u);
  EXPECT_TRUE(warm->exec.answer.Contains(
      {S("a1"), S("c1"), S("e1")}));
}

TEST(CacheFacadeTest, ObservedTuplesRoundTrip) {
  // A CachingSource from "yesterday's session" feeds AnswerWithCache.
  auto example = paperdata::MakeExample21();
  auto* v4 = dynamic_cast<InMemorySource*>(
      example.catalog.Find("v4").value());
  CachingSource session(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(v4->view(), v4->data())));
  // Yesterday someone searched for artist a5 (in yesterday's session
  // dictionary, which is gone by the time the cache is reused).
  auto yesterday = std::make_shared<ValueDictionary>();
  ASSERT_TRUE(session
                  .Execute(capability::SourceQuery::MakeUnsafe(
                      session.view(), yesterday, {{"Artist", S("a5")}}))
                  .ok());
  Relation observed = session.ObservedTuples();
  ASSERT_EQ(observed.size(), 1u);

  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report =
      answerer.AnswerWithCache(example.query, {{"v4", observed}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->exec.answer.Contains({S("$11")}));
}

}  // namespace
}  // namespace limcap::exec
