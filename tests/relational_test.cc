#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/operators.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace limcap::relational {
namespace {

Value S(const char* text) { return Value::String(text); }
Value I(int64_t v) { return Value::Int64(v); }

TEST(SchemaTest, MakeRejectsDuplicates) {
  EXPECT_FALSE(Schema::Make({"A", "B", "A"}).ok());
  EXPECT_FALSE(Schema::Make({"A", ""}).ok());
  EXPECT_TRUE(Schema::Make({"A", "B"}).ok());
  EXPECT_TRUE(Schema::Make({}).ok());
}

TEST(SchemaTest, IndexOfAndContains) {
  Schema schema = Schema::MakeUnsafe({"Song", "Cd"});
  EXPECT_EQ(schema.arity(), 2u);
  EXPECT_EQ(schema.IndexOf("Cd"), 1u);
  EXPECT_FALSE(schema.IndexOf("Price").has_value());
  EXPECT_TRUE(schema.Contains("Song"));
}

TEST(SchemaTest, CommonAttributesInThisOrder) {
  Schema a = Schema::MakeUnsafe({"X", "Y", "Z"});
  Schema b = Schema::MakeUnsafe({"Z", "W", "X"});
  EXPECT_EQ(a.CommonAttributes(b), (std::vector<std::string>{"X", "Z"}));
}

TEST(SchemaTest, NaturalJoinSchema) {
  Schema a = Schema::MakeUnsafe({"Song", "Cd"});
  Schema b = Schema::MakeUnsafe({"Cd", "Artist", "Price"});
  Schema joined = a.NaturalJoinSchema(b);
  EXPECT_EQ(joined.attributes(),
            (std::vector<std::string>{"Song", "Cd", "Artist", "Price"}));
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(Schema::MakeUnsafe({"A", "B"}).ToString(), "(A, B)");
}

TEST(RelationTest, InsertDeduplicates) {
  Relation relation(Schema::MakeUnsafe({"A"}));
  EXPECT_TRUE(relation.InsertUnsafe({S("x")}));
  EXPECT_FALSE(relation.InsertUnsafe({S("x")}));
  EXPECT_TRUE(relation.InsertUnsafe({S("y")}));
  EXPECT_EQ(relation.size(), 2u);
  EXPECT_TRUE(relation.Contains({S("x")}));
  EXPECT_FALSE(relation.Contains({S("z")}));
}

TEST(RelationTest, InsertRejectsArityMismatch) {
  Relation relation(Schema::MakeUnsafe({"A", "B"}));
  EXPECT_FALSE(relation.Insert({S("x")}).ok());
}

TEST(RelationTest, ProbeFindsMatches) {
  Relation relation(Schema::MakeUnsafe({"A", "B"}));
  relation.InsertUnsafe({S("x"), I(1)});
  relation.InsertUnsafe({S("x"), I(2)});
  relation.InsertUnsafe({S("y"), I(3)});
  const auto& matches = relation.Probe({0}, {S("x")});
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_TRUE(relation.Probe({0}, {S("z")}).empty());
  EXPECT_EQ(relation.Probe({0, 1}, {S("y"), I(3)}).size(), 1u);
}

TEST(RelationTest, ProbeIndexStaysConsistentAfterInsert) {
  Relation relation(Schema::MakeUnsafe({"A", "B"}));
  relation.InsertUnsafe({S("x"), I(1)});
  EXPECT_EQ(relation.Probe({0}, {S("x")}).size(), 1u);  // builds the index
  relation.InsertUnsafe({S("x"), I(2)});                // must update it
  EXPECT_EQ(relation.Probe({0}, {S("x")}).size(), 2u);
}

TEST(RelationTest, ProbeOnEmptyColumnsReturnsAllRows) {
  Relation relation(Schema::MakeUnsafe({"A"}));
  relation.InsertUnsafe({S("x")});
  relation.InsertUnsafe({S("y")});
  EXPECT_EQ(relation.Probe({}, {}).size(), 2u);
}

TEST(RelationTest, ColumnValuesAreDistinct) {
  Relation relation(Schema::MakeUnsafe({"A", "B"}));
  relation.InsertUnsafe({S("x"), I(1)});
  relation.InsertUnsafe({S("x"), I(2)});
  EXPECT_EQ(relation.ColumnValues(0).size(), 1u);
  EXPECT_EQ(relation.ColumnValues(1).size(), 2u);
}

TEST(RelationTest, EqualityIsSetSemantics) {
  Relation a(Schema::MakeUnsafe({"A"}));
  Relation b(Schema::MakeUnsafe({"A"}));
  a.InsertUnsafe({S("x")});
  a.InsertUnsafe({S("y")});
  b.InsertUnsafe({S("y")});
  b.InsertUnsafe({S("x")});
  EXPECT_TRUE(a == b);
  b.InsertUnsafe({S("z")});
  EXPECT_FALSE(a == b);
}

TEST(RelationTest, ToStringSorted) {
  Relation relation(Schema::MakeUnsafe({"A"}));
  relation.InsertUnsafe({S("y")});
  relation.InsertUnsafe({S("x")});
  EXPECT_EQ(relation.ToString(), "{<x>, <y>}");
}

TEST(OperatorsTest, SelectByEquality) {
  Relation relation(Schema::MakeUnsafe({"Song", "Cd"}));
  relation.InsertUnsafe({S("t1"), S("c1")});
  relation.InsertUnsafe({S("t2"), S("c2")});
  auto selected = Select(relation, {{"Song", S("t1")}});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 1u);
  EXPECT_TRUE(selected->Contains({S("t1"), S("c1")}));
}

TEST(OperatorsTest, SelectUnknownAttributeFails) {
  Relation relation(Schema::MakeUnsafe({"A"}));
  EXPECT_FALSE(Select(relation, {{"B", S("x")}}).ok());
}

TEST(OperatorsTest, SelectMultipleConditionsAreConjunctive) {
  Relation relation(Schema::MakeUnsafe({"A", "B"}));
  relation.InsertUnsafe({S("x"), I(1)});
  relation.InsertUnsafe({S("x"), I(2)});
  auto selected = Select(relation, {{"A", S("x")}, {"B", I(2)}});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 1u);
}

TEST(OperatorsTest, ProjectDeduplicates) {
  Relation relation(Schema::MakeUnsafe({"Cd", "Price"}));
  relation.InsertUnsafe({S("c1"), S("$15")});
  relation.InsertUnsafe({S("c2"), S("$15")});
  auto projected = Project(relation, {"Price"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->size(), 1u);
}

TEST(OperatorsTest, ProjectReorders) {
  Relation relation(Schema::MakeUnsafe({"A", "B"}));
  relation.InsertUnsafe({S("x"), S("y")});
  auto projected = Project(relation, {"B", "A"});
  ASSERT_TRUE(projected.ok());
  EXPECT_TRUE(projected->Contains({S("y"), S("x")}));
}

TEST(OperatorsTest, NaturalJoinOnSharedAttribute) {
  Relation songs(Schema::MakeUnsafe({"Song", "Cd"}));
  songs.InsertUnsafe({S("t1"), S("c1")});
  songs.InsertUnsafe({S("t2"), S("c3")});
  Relation prices(Schema::MakeUnsafe({"Cd", "Price"}));
  prices.InsertUnsafe({S("c1"), S("$15")});
  prices.InsertUnsafe({S("c2"), S("$12")});

  Relation joined = NaturalJoin(songs, prices);
  EXPECT_EQ(joined.schema().attributes(),
            (std::vector<std::string>{"Song", "Cd", "Price"}));
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined.Contains({S("t1"), S("c1"), S("$15")}));
}

TEST(OperatorsTest, NaturalJoinWithoutSharedAttributesIsProduct) {
  Relation a(Schema::MakeUnsafe({"A"}));
  a.InsertUnsafe({S("x")});
  a.InsertUnsafe({S("y")});
  Relation b(Schema::MakeUnsafe({"B"}));
  b.InsertUnsafe({I(1)});
  b.InsertUnsafe({I(2)});
  EXPECT_EQ(NaturalJoin(a, b).size(), 4u);
}

TEST(OperatorsTest, NaturalJoinIsCommutativeUpToSchema) {
  Relation a(Schema::MakeUnsafe({"A", "B"}));
  a.InsertUnsafe({S("x"), S("m")});
  a.InsertUnsafe({S("y"), S("n")});
  Relation b(Schema::MakeUnsafe({"B", "C"}));
  b.InsertUnsafe({S("m"), S("p")});

  Relation ab = NaturalJoin(a, b);
  Relation ba = NaturalJoin(b, a);
  EXPECT_EQ(ab.size(), ba.size());
  auto reordered = Project(ba, ab.schema().attributes());
  ASSERT_TRUE(reordered.ok());
  EXPECT_TRUE(ab == *reordered);
}

TEST(OperatorsTest, NaturalJoinAllIdentity) {
  Relation join = NaturalJoinAll({});
  EXPECT_EQ(join.size(), 1u);
  EXPECT_EQ(join.schema().arity(), 0u);
}

TEST(OperatorsTest, NaturalJoinAllThreeWay) {
  Relation r1(Schema::MakeUnsafe({"A", "B"}));
  r1.InsertUnsafe({S("a"), S("b")});
  Relation r2(Schema::MakeUnsafe({"B", "C"}));
  r2.InsertUnsafe({S("b"), S("c")});
  Relation r3(Schema::MakeUnsafe({"C", "D"}));
  r3.InsertUnsafe({S("c"), S("d")});
  Relation join = NaturalJoinAll({&r1, &r2, &r3});
  EXPECT_EQ(join.size(), 1u);
  EXPECT_TRUE(join.Contains({S("a"), S("b"), S("c"), S("d")}));
}

TEST(OperatorsTest, UnionRequiresSameSchema) {
  Relation a(Schema::MakeUnsafe({"A"}));
  Relation b(Schema::MakeUnsafe({"B"}));
  EXPECT_FALSE(Union(a, b).ok());
}

TEST(OperatorsTest, UnionDeduplicates) {
  Relation a(Schema::MakeUnsafe({"A"}));
  a.InsertUnsafe({S("x")});
  Relation b(Schema::MakeUnsafe({"A"}));
  b.InsertUnsafe({S("x")});
  b.InsertUnsafe({S("y")});
  auto united = Union(a, b);
  ASSERT_TRUE(united.ok());
  EXPECT_EQ(united->size(), 2u);
}

TEST(OperatorsTest, Difference) {
  Relation a(Schema::MakeUnsafe({"A"}));
  a.InsertUnsafe({S("x")});
  a.InsertUnsafe({S("y")});
  Relation b(Schema::MakeUnsafe({"A"}));
  b.InsertUnsafe({S("y")});
  auto diff = Difference(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 1u);
  EXPECT_TRUE(diff->Contains({S("x")}));
}

TEST(OperatorsTest, RowToString) {
  EXPECT_EQ(RowToString({S("t1"), S("c1")}), "<t1, c1>");
}

// ---- randomized algebraic properties -------------------------------------

namespace {

Relation RandomRelation(limcap::Rng* rng, const Schema& schema,
                        std::size_t rows, std::size_t domain) {
  Relation relation(schema);
  for (std::size_t r = 0; r < rows; ++r) {
    Row row;
    for (std::size_t c = 0; c < schema.arity(); ++c) {
      row.push_back(I(static_cast<int64_t>(rng->Below(domain))));
    }
    relation.InsertUnsafe(std::move(row));
  }
  return relation;
}

}  // namespace

class JoinAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinAlgebra, JoinIsAssociativeAndCommutative) {
  limcap::Rng rng(GetParam() * 1237 + 5);
  Relation a = RandomRelation(&rng, Schema::MakeUnsafe({"A", "B"}), 12, 4);
  Relation b = RandomRelation(&rng, Schema::MakeUnsafe({"B", "C"}), 12, 4);
  Relation c = RandomRelation(&rng, Schema::MakeUnsafe({"C", "D"}), 12, 4);

  Relation left = NaturalJoin(NaturalJoin(a, b), c);
  Relation right = NaturalJoin(a, NaturalJoin(b, c));
  auto right_reordered = Project(right, left.schema().attributes());
  ASSERT_TRUE(right_reordered.ok());
  EXPECT_TRUE(left == *right_reordered);

  Relation ab = NaturalJoin(a, b);
  Relation ba = NaturalJoin(b, a);
  auto ba_reordered = Project(ba, ab.schema().attributes());
  ASSERT_TRUE(ba_reordered.ok());
  EXPECT_TRUE(ab == *ba_reordered);
}

TEST_P(JoinAlgebra, JoinIsIdempotentAndSelectionCommutes) {
  limcap::Rng rng(GetParam() * 31 + 9);
  Relation a = RandomRelation(&rng, Schema::MakeUnsafe({"A", "B"}), 15, 5);
  EXPECT_TRUE(NaturalJoin(a, a) == a);

  // σ then π == π then σ when the selection attribute survives.
  Value pivot = I(static_cast<int64_t>(rng.Below(5)));
  auto selected_first = Project(*Select(a, {{"A", pivot}}), {"A"});
  auto projected_first = Select(*Project(a, {"A"}), {{"A", pivot}});
  ASSERT_TRUE(selected_first.ok());
  ASSERT_TRUE(projected_first.ok());
  EXPECT_TRUE(*selected_first == *projected_first);

  // σ distributes over ∪.
  Relation b = RandomRelation(&rng, Schema::MakeUnsafe({"A", "B"}), 15, 5);
  auto union_then_select = Select(*Union(a, b), {{"A", pivot}});
  auto select_then_union =
      Union(*Select(a, {{"A", pivot}}), *Select(b, {{"A", pivot}}));
  ASSERT_TRUE(union_then_select.ok());
  ASSERT_TRUE(select_then_union.ok());
  EXPECT_TRUE(*union_then_select == *select_then_union);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAlgebra,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace limcap::relational
