// The strict static gate in QueryAnswerer, and the analyzer's soundness
// property: a rule judged never-fireable contributes no facts — pruning
// it cannot change any answer.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/executability.h"
#include "capability/catalog_text.h"
#include "datalog/parser.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

namespace limcap {
namespace {

using exec::AnswerReport;
using exec::ExecOptions;
using exec::QueryAnswerer;
using exec::StaticAnalysisMode;
using relational::Row;
using workload::CatalogSpec;
using workload::GeneratedInstance;
using workload::GenerateInstance;
using workload::GenerateQuery;
using workload::QuerySpec;

std::set<Row> Rows(const relational::Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

/// Example 2.1's catalog extended with v6, whose only template needs
/// Isbn bound — unsatisfiable — plus a {v6} connection. The full
/// Π(Q, V) then contains rules the analyzer must flag and prune.
constexpr const char* kIsbnCatalog = R"(
source v1(Song, Cd) [bf] { (t1, c1) (t2, c3) }
source v2(Song, Cd) [fb] { (t1, c4) (t2, c2) (t1, c5) }
source v3(Cd, Artist, Price) [bff] { (c1, a1, "$15") (c3, a3, "$14") }
source v4(Cd, Artist, Price) [fbf] {
  (c1, a1, "$13") (c2, a1, "$12") (c4, a3, "$10") (c5, a5, "$11")
}
source v6(Isbn, Price) [bf] { (i1, "$9") }
)";

planner::Query IsbnQuery() {
  return planner::Query(
      {{"Song", Value::String("t1")}}, {"Price"},
      {planner::Connection({"v1", "v3"}), planner::Connection({"v6"})});
}

TEST(StaticGateTest, OffRunsNoAnalysis) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_FALSE(report->analysis_ran);
}

TEST(StaticGateTest, WarnAttachesFindingsAndExecutes) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto baseline = answerer.Answer(example.query);
  ASSERT_TRUE(baseline.ok());

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kWarn;
  auto gated = answerer.Answer(example.query, options);
  ASSERT_TRUE(gated.ok()) << gated.status().message();
  EXPECT_TRUE(gated->analysis_ran);
  EXPECT_FALSE(gated->analysis.diagnostics.has_errors());
  EXPECT_EQ(Rows(gated->exec.answer), Rows(baseline->exec.answer));
}

TEST(StaticGateTest, RejectAcceptsCleanOptimizedPlan) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kReject;
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->analysis_ran);
}

TEST(StaticGateTest, RejectRefusesUnbindableViewAtom) {
  // The optimizer drops the doomed {v6} connection, so the strict gate
  // accepts the optimized plan — but the *unoptimized* program carries
  // the unbindable v6 atom and must be rejected.
  auto parsed = capability::ParseCatalog(kIsbnCatalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  QueryAnswerer answerer(&parsed->catalog, planner::DomainMap());

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kReject;
  auto optimized = answerer.Answer(IsbnQuery(), options);
  EXPECT_TRUE(optimized.ok()) << optimized.status().message();

  auto full = answerer.AnswerUnoptimized(IsbnQuery(), options);
  ASSERT_FALSE(full.ok());
  EXPECT_NE(full.status().message().find("LC020"), std::string::npos);
}

TEST(StaticGateTest, PruneDropsDeadRulesAndPreservesAnswers) {
  auto parsed = capability::ParseCatalog(kIsbnCatalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  QueryAnswerer answerer(&parsed->catalog, planner::DomainMap());

  auto baseline = answerer.AnswerUnoptimized(IsbnQuery());
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kPrune;
  auto pruned = answerer.AnswerUnoptimized(IsbnQuery(), options);
  ASSERT_TRUE(pruned.ok()) << pruned.status().message();
  EXPECT_TRUE(pruned->analysis_ran);

  std::size_t dead = 0;
  for (const analysis::RuleVerdict& verdict :
       pruned->analysis.executability.rules) {
    if (!verdict.can_fire) ++dead;
  }
  EXPECT_GT(dead, 0u) << "the v6 rules should be provably dead";
  EXPECT_EQ(Rows(pruned->exec.answer), Rows(baseline->exec.answer));
}

TEST(StaticGateTest, GateFunctionRejectsAndPrunesHandWrittenPrograms) {
  auto parsed = capability::ParseCatalog("source v(A, B) [bf] { (a1, b1) }");
  ASSERT_TRUE(parsed.ok());
  // No body ordering binds v's A position and nothing populates domA:
  // LC020 (reject) and never-fires (prune) at once.
  auto program = datalog::ParseProgram("ans(Y) :- v(X, Y).");
  ASSERT_TRUE(program.ok());

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kReject;
  AnswerReport report;
  auto rejected = exec::ApplyStaticAnalysisGate(
      *program, parsed->views, planner::DomainMap(), options, &report);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("LC020"), std::string::npos);

  options.static_analysis = StaticAnalysisMode::kPrune;
  auto pruned = exec::ApplyStaticAnalysisGate(
      *program, parsed->views, planner::DomainMap(), options, &report);
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned->rules().empty());
}

TEST(StaticGateTest, GateDoesNotPruneGloballyFetchedRules) {
  // The soundness counter-example: p's rule has no SIP order (LC020),
  // but domA is populated elsewhere, the evaluator fetches v globally,
  // and the rule fires — kPrune must keep it.
  auto parsed = capability::ParseCatalog("source v(A, B) [bf] { (a1, b1) }");
  ASSERT_TRUE(parsed.ok());
  auto program = datalog::ParseProgram(
      "domA(a1).\n"
      "p(X, Y) :- v(X, Y).");
  ASSERT_TRUE(program.ok());

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kPrune;
  AnswerReport report;
  auto pruned = exec::ApplyStaticAnalysisGate(
      *program, parsed->views, planner::DomainMap(), options, &report);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->rules().size(), 2u);
}

// ---------------------------------------------------------------------
// Property: the analyzer's never-fire verdict is sound — on random
// instances, rules it would prune derive nothing, and pruning them
// leaves the answer bit-identical.

struct Scenario {
  CatalogSpec::Topology topology;
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const char* topology =
      info.param.topology == CatalogSpec::Topology::kChain  ? "Chain"
      : info.param.topology == CatalogSpec::Topology::kStar ? "Star"
                                                            : "Random";
  return std::string(topology) + "Seed" + std::to_string(info.param.seed);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (auto topology :
       {CatalogSpec::Topology::kChain, CatalogSpec::Topology::kStar,
        CatalogSpec::Topology::kRandom}) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      scenarios.push_back({topology, seed});
    }
  }
  return scenarios;
}

class PruneSoundness : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    CatalogSpec spec;
    spec.topology = GetParam().topology;
    spec.seed = GetParam().seed * 7919 + 211;
    spec.num_views = 7;
    spec.num_attributes = 6;
    spec.tuples_per_view = 20;
    spec.domain_size = 10;
    instance_ = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.seed = GetParam().seed * 104729 + 19;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    auto query = GenerateQuery(instance_, query_spec);
    if (!query.ok()) GTEST_SKIP() << "no valid query for this instance";
    query_ = *query;
  }

  GeneratedInstance instance_;
  planner::Query query_;
};

TEST_P(PruneSoundness, PrunedRulesAreEvaluationInert) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);

  auto baseline = answerer.AnswerUnoptimized(query_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();

  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kPrune;
  auto pruned = answerer.AnswerUnoptimized(query_, options);
  ASSERT_TRUE(pruned.ok()) << pruned.status().message();
  ASSERT_TRUE(pruned->analysis_ran);

  // Pruning never changes the answer.
  EXPECT_EQ(Rows(pruned->exec.answer), Rows(baseline->exec.answer));

  // And the verdicts were truthful: a predicate whose every rule the
  // analyzer called dead derived nothing in the ungated run.
  const analysis::ExecutabilityResult& verdicts =
      pruned->analysis.executability;
  const datalog::Program& program = baseline->plan.full_program;
  std::set<std::string> heads;
  for (const datalog::Rule& rule : program.rules()) {
    heads.insert(rule.head.predicate);
  }
  for (const std::string& head : heads) {
    if (verdicts.producible.count(head) > 0) continue;
    EXPECT_EQ(baseline->exec.store.Count(head), 0u)
        << "analyzer called '" << head
        << "' unproducible, but evaluation derived facts for it";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, PruneSoundness,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

}  // namespace
}  // namespace limcap
