// The runtime-adaptive dispatch test wall (every suite name contains
// "Adaptive" on purpose: the TSan CI job selects these suites by regex).
// AdaptiveOptions turns on dynamic relevance pruning, cost-aware
// frontier ordering with batching, and hedged requests — all of which
// change timing and fetch counts but must NEVER change answers. The
// wall pins:
//
//   * OrderedFingerprint bit-identity of adaptive execution across
//     serial / parallel-eval / concurrent-fetch dispatch, on the four
//     paper examples, on 15 generated topologies, and under injected
//     source faults;
//   * serve-vs-solo bit-identity with adaptive dispatch on a shared
//     ServeSession (the publish-only AdaptiveState contract);
//   * machine-checkable skip certificates: issued skips re-verify
//     against the final store, tampered ones are rejected;
//   * hedge accounting: a hedge can rescue a deadline without a second
//     source attempt, and a hedged timeout still counts exactly once
//     toward the circuit breaker;
//   * the FetchGovernor hedging×coalescing fix: cross-query coalescing
//     shares outcomes only between fetches with the SAME hedge delay.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/dynamic_relevance.h"
#include "capability/catalog_text.h"
#include "capability/in_memory_source.h"
#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "mediator/serve_session.h"
#include "paperdata/paper_examples.h"
#include "runtime/adaptive_dispatcher.h"
#include "runtime/fault_injection.h"
#include "runtime/fetch_governor.h"
#include "runtime/fetch_scheduler.h"
#include "workload/generator.h"

namespace limcap {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceQuery;
using capability::SourceView;
using exec::ExecOptions;
using exec::OrderedFingerprint;
using exec::QueryAnswerer;
using relational::Relation;
using relational::Row;
using relational::Schema;
using runtime::FaultInjectingSource;
using runtime::FaultSpec;
using runtime::FetchGovernor;
using runtime::FetchRequest;
using runtime::FetchScheduler;
using runtime::RuntimeOptions;
using workload::CatalogSpec;
using workload::GeneratedInstance;
using workload::GenerateInstance;
using workload::GenerateQuery;
using workload::QuerySpec;

Value S(const char* text) { return Value::String(text); }

std::set<Row> Rows(const Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

/// The three execution modes of the bit-identity contract, each with
/// the full adaptive stack switched on.
ExecOptions AdaptiveSerial() {
  ExecOptions options;
  options.runtime.adaptive.enabled = true;
  return options;
}

ExecOptions AdaptiveParallelEval() {
  ExecOptions options = AdaptiveSerial();
  options.mode = datalog::Evaluator::Mode::kParallelSemiNaive;
  options.eval_threads = 4;
  return options;
}

ExecOptions AdaptiveConcurrentFetch() {
  ExecOptions options = AdaptiveSerial();
  options.runtime.concurrent = true;
  options.runtime.max_in_flight = 8;
  options.runtime.per_source_max_in_flight = 8;
  return options;
}

/// Answers `example.query` plain and adaptively in all three modes;
/// asserts the adaptive answers match the non-adaptive baseline and the
/// adaptive executions are bit-identical to each other.
void ExpectAdaptivePreservesAnswers(const paperdata::PaperExample& example,
                                    const char* label) {
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto baseline = answerer.Answer(example.query);
  ASSERT_TRUE(baseline.ok()) << label << ": " << baseline.status().message();

  auto serial = answerer.Answer(example.query, AdaptiveSerial());
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().message();
  EXPECT_EQ(Rows(serial->exec.answer), Rows(baseline->exec.answer)) << label;
  // Adaptive dispatch never fetches more than the plain run.
  EXPECT_LE(serial->exec.log.total_queries(),
            baseline->exec.log.total_queries())
      << label;

  auto parallel = answerer.Answer(example.query, AdaptiveParallelEval());
  ASSERT_TRUE(parallel.ok()) << label;
  EXPECT_EQ(Rows(parallel->exec.answer), Rows(baseline->exec.answer))
      << label;

  auto concurrent = answerer.Answer(example.query, AdaptiveConcurrentFetch());
  ASSERT_TRUE(concurrent.ok()) << label;
  EXPECT_EQ(Rows(concurrent->exec.answer), Rows(baseline->exec.answer))
      << label;

  const std::string fingerprint = OrderedFingerprint(serial->exec);
  EXPECT_EQ(OrderedFingerprint(parallel->exec), fingerprint) << label;
  EXPECT_EQ(OrderedFingerprint(concurrent->exec), fingerprint) << label;
}

TEST(AdaptiveBitIdentityTest, PaperExamplesMatchBaselineInEveryMode) {
  ExpectAdaptivePreservesAnswers(paperdata::MakeExample21(), "example 2.1");
  ExpectAdaptivePreservesAnswers(paperdata::MakeExample41(), "example 4.1");
  ExpectAdaptivePreservesAnswers(paperdata::MakeExample51(), "example 5.1");
  ExpectAdaptivePreservesAnswers(paperdata::MakeExample52(), "example 5.2");
}

TEST(AdaptiveBitIdentityTest, EagerStrategyStaysAnswerPreserving) {
  // Eager fetching truncates each round's frontier to one query, so the
  // checker's full-frontier frozen fixpoint is unavailable — the
  // evaluator must fall back to never skipping rather than skipping
  // unsoundly.
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto baseline = answerer.Answer(example.query);
  ASSERT_TRUE(baseline.ok());

  ExecOptions options = AdaptiveSerial();
  options.strategy = exec::FetchStrategy::kEager;
  auto eager = answerer.Answer(example.query, options);
  ASSERT_TRUE(eager.ok()) << eager.status().message();
  EXPECT_EQ(Rows(eager->exec.answer), Rows(baseline->exec.answer));
  EXPECT_TRUE(eager->exec.skip_certificates.empty());
  EXPECT_EQ(eager->exec.fetch_report.skipped_dynamic, 0u);
}

// ---------------------------------------------------------------------
// Property: on random instances, adaptive dispatch stays
// answer-preserving in all three modes, bit-identical across them, and
// never issues more source queries than the plain unoptimized run.

struct Scenario {
  CatalogSpec::Topology topology;
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const char* topology =
      info.param.topology == CatalogSpec::Topology::kChain  ? "Chain"
      : info.param.topology == CatalogSpec::Topology::kStar ? "Star"
                                                            : "Random";
  return std::string(topology) + "Seed" + std::to_string(info.param.seed);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (auto topology :
       {CatalogSpec::Topology::kChain, CatalogSpec::Topology::kStar,
        CatalogSpec::Topology::kRandom}) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      scenarios.push_back({topology, seed});
    }
  }
  return scenarios;
}

class AdaptiveProperty : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    CatalogSpec spec;
    spec.topology = GetParam().topology;
    spec.seed = GetParam().seed * 7919 + 401;
    spec.num_views = 7;
    spec.num_attributes = 6;
    spec.tuples_per_view = 20;
    spec.domain_size = 10;
    instance_ = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.seed = GetParam().seed * 104729 + 41;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    auto query = GenerateQuery(instance_, query_spec);
    if (!query.ok()) GTEST_SKIP() << "no valid query for this instance";
    query_ = *query;
  }

  GeneratedInstance instance_;
  planner::Query query_;
};

TEST_P(AdaptiveProperty, AdaptiveIsAnswerPreservingAcrossModes) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);

  auto baseline = answerer.AnswerUnoptimized(query_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();

  auto serial = answerer.AnswerUnoptimized(query_, AdaptiveSerial());
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  EXPECT_EQ(Rows(serial->exec.answer), Rows(baseline->exec.answer));
  EXPECT_LE(serial->exec.log.total_queries(),
            baseline->exec.log.total_queries());
  // Every suppressed fetch left a certificate behind.
  EXPECT_EQ(serial->exec.skip_certificates.size(),
            serial->exec.fetch_report.skipped_dynamic);

  auto parallel = answerer.AnswerUnoptimized(query_, AdaptiveParallelEval());
  ASSERT_TRUE(parallel.ok());
  auto concurrent =
      answerer.AnswerUnoptimized(query_, AdaptiveConcurrentFetch());
  ASSERT_TRUE(concurrent.ok());

  const std::string fingerprint = OrderedFingerprint(serial->exec);
  EXPECT_EQ(OrderedFingerprint(parallel->exec), fingerprint);
  EXPECT_EQ(OrderedFingerprint(concurrent->exec), fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Workloads, AdaptiveProperty,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

// ---------------------------------------------------------------------
// Fault injection: adaptive dispatch on a degraded catalog still
// matches the plain degraded answer and stays bit-identical across
// dispatch modes.

/// Example 2.1's catalog with fault-injected v4 (the FlakySetup shape
/// of failure_injection_test.cc).
struct FlakySetup {
  SourceCatalog catalog;
  paperdata::PaperExample example;
};
FlakySetup MakeFlaky(FaultSpec spec) {
  FlakySetup setup{SourceCatalog(), paperdata::MakeExample21()};
  for (const auto& view : setup.example.views) {
    auto* source = dynamic_cast<InMemorySource*>(
        setup.example.catalog.Find(view.name()).value());
    auto copy = std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data()));
    if (view.name() == "v4") {
      setup.catalog.RegisterUnsafe(std::make_unique<FaultInjectingSource>(
          std::move(copy), spec));
    } else {
      setup.catalog.RegisterUnsafe(std::move(copy));
    }
  }
  return setup;
}

void ExpectAdaptiveMatchesDegradedBaseline(FaultSpec spec,
                                           const ExecOptions& base_options,
                                           const char* label) {
  // Every run gets a FRESH fault-injected catalog: the injector's call
  // counter feeds its error strings, so sharing one source across runs
  // would make the merged logs differ by call numbering alone.
  ExecOptions plain = base_options;
  plain.continue_on_source_error = true;
  FlakySetup base_setup = MakeFlaky(spec);
  QueryAnswerer base_answerer(&base_setup.catalog, base_setup.example.domains);
  auto baseline = base_answerer.Answer(base_setup.example.query, plain);
  ASSERT_TRUE(baseline.ok()) << label << ": " << baseline.status().message();

  std::string fingerprint;
  for (ExecOptions options : {AdaptiveSerial(), AdaptiveParallelEval(),
                              AdaptiveConcurrentFetch()}) {
    options.runtime.retry = base_options.runtime.retry;
    options.continue_on_source_error = true;
    FlakySetup setup = MakeFlaky(spec);
    QueryAnswerer answerer(&setup.catalog, setup.example.domains);
    auto adaptive = answerer.Answer(setup.example.query, options);
    ASSERT_TRUE(adaptive.ok()) << label << ": "
                               << adaptive.status().message();
    EXPECT_EQ(Rows(adaptive->exec.answer), Rows(baseline->exec.answer))
        << label;
    if (fingerprint.empty()) {
      fingerprint = OrderedFingerprint(adaptive->exec);
    } else {
      EXPECT_EQ(OrderedFingerprint(adaptive->exec), fingerprint) << label;
    }
  }
}

TEST(AdaptiveFaultTest, PermanentSourceFailureStaysBitIdentical) {
  FaultSpec spec;
  spec.fail_first_calls = 100;  // v4 is down for the whole run
  ExpectAdaptiveMatchesDegradedBaseline(spec, ExecOptions(), "v4 down");
}

TEST(AdaptiveFaultTest, FailThenRecoverStaysBitIdentical) {
  // Each distinct v4 query fails once and succeeds on retry — keyed to
  // the query, not call order, so every dispatch mode sees the same
  // faults.
  FaultSpec spec;
  spec.fail_first_per_query = 1;
  ExecOptions base;
  base.runtime.retry.max_attempts = 3;
  ExpectAdaptiveMatchesDegradedBaseline(spec, base, "v4 flaky");
}

// ---------------------------------------------------------------------
// Serve: adaptive dispatch on a shared ServeSession keeps every answer
// bit-identical to the same query answered alone, and the session's
// AdaptiveState aggregates what the queries learned (publish-only: the
// aggregation itself must not perturb any fingerprint).

std::string SoloFingerprint(const workload::MixedWorkload& workload,
                            const planner::Query& query,
                            const ExecOptions& options) {
  QueryAnswerer answerer(&workload.catalog, workload.domains);
  auto report = answerer.Answer(query, options);
  if (!report.ok()) return "error: " + report.status().ToString();
  return OrderedFingerprint(report->exec);
}

TEST(AdaptiveServeTest, ConcurrentAdaptiveAnswersMatchSolo) {
  workload::MixedWorkloadSpec spec;
  spec.seed = 7;
  spec.num_requests = 10;
  auto workload = workload::GenerateMixedWorkload(spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  mediator::Mediator mediator(&workload->catalog, workload->domains);

  for (const ExecOptions& exec_options :
       {AdaptiveSerial(), AdaptiveConcurrentFetch()}) {
    std::vector<std::string> expected;
    expected.reserve(workload->requests.size());
    for (const workload::MixedRequest& request : workload->requests) {
      expected.push_back(
          SoloFingerprint(*workload, request.query, exec_options));
    }

    mediator::ServeOptions serve_options;
    serve_options.workers = 4;
    serve_options.exec = exec_options;
    mediator::ServeSession session(&mediator, serve_options);

    std::vector<std::string> actual(workload->requests.size());
    std::mutex mutex;
    std::condition_variable all_done;
    std::size_t done = 0;
    for (std::size_t i = 0; i < workload->requests.size(); ++i) {
      mediator::ServeRequest request;
      request.query = workload->requests[i].query;
      Status admitted = session.Submit(
          std::move(request), [&, i](mediator::ServeResponse response) {
            std::string fingerprint =
                response.report.ok()
                    ? OrderedFingerprint(response.report->exec)
                    : "error: " + response.report.status().ToString();
            std::lock_guard<std::mutex> lock(mutex);
            actual[i] = std::move(fingerprint);
            ++done;
            all_done.notify_one();
          });
      ASSERT_TRUE(admitted.ok()) << admitted.message();
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      all_done.wait(lock,
                    [&] { return done == workload->requests.size(); });
    }
    session.Shutdown();

    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]) << "request " << i;
    }
    // The queries published their learned profiles into the session.
    EXPECT_GT(session.adaptive_state().source_count(), 0u);
  }
}

// ---------------------------------------------------------------------
// Skip certificates: a catalog where a decoy view pollutes a shared
// domain with values the goal provably cannot use. The adaptive run
// must skip exactly those fetches, preserve the answer, and leave
// independently re-verifiable certificates behind.

// Two connections answer ans(Price) from Song=t1. w feeds junk c9 into
// dom_Cd (its only CD for t1); conn2 keeps w itself relevant, but:
//   * v2(c9) is useless for conn1 — v1^ is frozen without (t1, c9) —
//     and v2 does not appear in conn2;
//   * x(c1) is useless for conn2 — w^ is frozen without (t1, c1).
// Neither fetch is statically prunable (both channels matter for other
// bindings), so only the runtime check can save them.
constexpr const char* kJunkFeederCatalog = R"(
source v1(Song, Cd) [bf] { (t1, c1) }
source v2(Cd, Price) [bf] { (c1, "$5") (c9, "$9") }
source w(Song, Cd) [bf] { (t1, c9) }
source x(Cd, Price) [bf] { (c1, "$7") }
)";

planner::Query JunkFeederQuery() {
  return planner::Query({{"Song", S("t1")}}, {"Price"},
                        {planner::Connection({"v1", "v2"}),
                         planner::Connection({"w", "x"})});
}

TEST(AdaptiveSkipCertificateTest, DecoyedJoinSkipsWithCertificates) {
  auto parsed = capability::ParseCatalog(kJunkFeederCatalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  QueryAnswerer answerer(&parsed->catalog, planner::DomainMap());

  auto baseline = answerer.Answer(JunkFeederQuery());
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();
  EXPECT_EQ(Rows(baseline->exec.answer), std::set<Row>({{S("$5")}}));

  auto adaptive = answerer.Answer(JunkFeederQuery(), AdaptiveSerial());
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().message();
  const exec::ExecResult& exec = adaptive->exec;
  EXPECT_EQ(Rows(exec.answer), Rows(baseline->exec.answer));

  // Exactly the two dynamically-useless fetches were suppressed.
  EXPECT_EQ(exec.fetch_report.skipped_dynamic, 2u);
  EXPECT_EQ(exec.log.total_queries(),
            baseline->exec.log.total_queries() - 2);
  ASSERT_EQ(exec.skip_certificates.size(), 2u);
  std::set<std::string> skipped;
  for (const auto& certificate : exec.skip_certificates) {
    ASSERT_EQ(certificate.combo.size(), 1u);
    skipped.insert(certificate.view + "(" +
                   certificate.combo[0].ToString() + ")");
    // The evidence cites a real frozen co-atom, not a vacuous clash.
    ASSERT_FALSE(certificate.evidence.empty());
    for (const auto& evidence : certificate.evidence) {
      EXPECT_FALSE(evidence.vacuous);
      EXPECT_FALSE(evidence.blocking_predicate.empty());
    }
    EXPECT_FALSE(certificate.frozen.empty());
  }
  EXPECT_EQ(skipped, (std::set<std::string>{"v2(c9)", "x(c1)"}));

  // Independent re-verification: rebuild a checker over the executed
  // program, the channel metadata and the FINAL store (frozen-ness is
  // monotone, so an all-frozen round upholds mid-run certificates).
  ASSERT_FALSE(exec.adaptive_channels.empty());
  analysis::DynamicRelevanceChecker checker(
      &exec.adaptive_program, exec.adaptive_channels, &exec.store);
  checker.BeginRound(
      std::vector<bool>(exec.adaptive_channels.size(), false));
  for (const auto& certificate : exec.skip_certificates) {
    EXPECT_TRUE(
        analysis::VerifySkipCertificate(checker, certificate).ok())
        << certificate.ToString();
  }

  // Tampered certificates are rejected: a combo whose fetch was
  // genuinely relevant, missing evidence, and a forged frozen witness.
  analysis::SkipCertificate wrong_combo = exec.skip_certificates[0];
  wrong_combo.combo[0] =
      wrong_combo.view == "v2" ? S("c1") : S("c9");
  EXPECT_FALSE(
      analysis::VerifySkipCertificate(checker, wrong_combo).ok());

  analysis::SkipCertificate no_evidence = exec.skip_certificates[0];
  no_evidence.evidence.clear();
  EXPECT_FALSE(
      analysis::VerifySkipCertificate(checker, no_evidence).ok());

  analysis::SkipCertificate forged_witness = exec.skip_certificates[0];
  for (auto& evidence : forged_witness.evidence) {
    evidence.blocking_predicate = "v2^";  // pending during the run
  }
  EXPECT_FALSE(
      analysis::VerifySkipCertificate(checker, forged_witness).ok());
}

TEST(AdaptiveSkipCertificateTest, SkipsStayBitIdenticalAcrossModes) {
  auto parsed = capability::ParseCatalog(kJunkFeederCatalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  QueryAnswerer answerer(&parsed->catalog, planner::DomainMap());

  auto serial = answerer.Answer(JunkFeederQuery(), AdaptiveSerial());
  ASSERT_TRUE(serial.ok());
  auto parallel = answerer.Answer(JunkFeederQuery(), AdaptiveParallelEval());
  ASSERT_TRUE(parallel.ok());
  auto concurrent =
      answerer.Answer(JunkFeederQuery(), AdaptiveConcurrentFetch());
  ASSERT_TRUE(concurrent.ok());

  const std::string fingerprint = OrderedFingerprint(serial->exec);
  EXPECT_EQ(OrderedFingerprint(parallel->exec), fingerprint);
  EXPECT_EQ(OrderedFingerprint(concurrent->exec), fingerprint);
  EXPECT_EQ(parallel->exec.fetch_report.skipped_dynamic, 2u);
  EXPECT_EQ(concurrent->exec.fetch_report.skipped_dynamic, 2u);
}

// ---------------------------------------------------------------------
// Dispatcher unit: deterministic reordering, batching, and skip
// accounting straight against a FetchScheduler.

std::unique_ptr<InMemorySource> MakePairSource(const std::string& name) {
  Relation data(Schema::MakeUnsafe({"A", "B"}));
  data.InsertUnsafe({S("a1"), S("b1")});
  data.InsertUnsafe({S("a2"), S("b2")});
  return std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe(name, {"A", "B"}, "bf"), std::move(data)));
}

FetchRequest MakeRequest(capability::Source* source, ValueDictionaryPtr dict,
                         const char* value) {
  FetchRequest request;
  request.source = source;
  request.query = SourceQuery::MakeUnsafe(source->view(), std::move(dict),
                                          {{"A", S(value)}});
  return request;
}

TEST(AdaptiveDispatcherTest, ReordersByLatencyBatchesAndLearns) {
  auto slow = MakePairSource("slow");
  auto fast = MakePairSource("fast");
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.adaptive.enabled = true;
  options.latency.per_source_ms["slow"] = 100;
  options.latency.per_source_ms["fast"] = 10;
  FetchScheduler scheduler(options, dict);
  runtime::AdaptiveDispatcher dispatcher(options, &scheduler);

  std::vector<FetchRequest> requests;
  requests.push_back(MakeRequest(slow.get(), dict, "a1"));
  requests.push_back(MakeRequest(fast.get(), dict, "a1"));
  requests.push_back(MakeRequest(fast.get(), dict, "a2"));
  auto results = dispatcher.ExecuteFrontier(requests, nullptr);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.tuples.ok());
    EXPECT_EQ(result.tuples->size(), 1u);
  }
  // Cold scores are 1/base-latency, so both fast fetches dispatched
  // before the slow one; results still align with the caller's order.
  EXPECT_DOUBLE_EQ(results[1].start_ms, 0);
  EXPECT_GT(results[0].start_ms, results[2].start_ms);
  // Consecutive same-(source, positions) fetches merged into one
  // batched call: the second fast fetch is a discounted member.
  EXPECT_FALSE(results[1].batched);
  EXPECT_TRUE(results[2].batched);
  EXPECT_EQ(scheduler.report().batched_calls, 1u);
  // The dispatcher learned one observation per fetch, keyed by source.
  const auto& profiles = dispatcher.profiles();
  ASSERT_EQ(profiles.count("slow"), 1u);
  ASSERT_EQ(profiles.count("fast"), 1u);
  EXPECT_EQ(profiles.at("slow").observations, 1u);
  EXPECT_EQ(profiles.at("fast").observations, 2u);
}

TEST(AdaptiveDispatcherTest, SkipProbeSuppressesWithoutSourceCalls) {
  auto source = MakePairSource("v");
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.adaptive.enabled = true;
  FetchScheduler scheduler(options, dict);
  runtime::AdaptiveDispatcher dispatcher(options, &scheduler);

  std::vector<FetchRequest> requests;
  requests.push_back(MakeRequest(source.get(), dict, "a1"));
  requests.push_back(MakeRequest(source.get(), dict, "a2"));
  auto results = dispatcher.ExecuteFrontier(
      requests, [](std::size_t index) { return index == 0; });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].skipped_dynamic);
  EXPECT_FALSE(results[0].tuples.ok());
  EXPECT_EQ(results[0].attempts, 0u);
  ASSERT_TRUE(results[1].tuples.ok());
  EXPECT_EQ(dispatcher.skipped(), 1u);
  EXPECT_EQ(dispatcher.skipped_per_source().at("v"), 1u);
  // Skipped fetches teach nothing: only the dispatched one observed.
  EXPECT_EQ(dispatcher.profiles().at("v").observations, 1u);
}

// ---------------------------------------------------------------------
// Hedging: timing-model rescue without extra source attempts, and
// exactly-once breaker accounting for hedged timeouts.

std::unique_ptr<FaultInjectingSource> MakeSpikySource(const char* name,
                                                      double spike_ms) {
  FaultSpec spec;
  spec.latency_spike_rate = 1.0;  // every call spikes, deterministically
  spec.latency_spike_ms = spike_ms;
  return std::make_unique<FaultInjectingSource>(MakePairSource(name), spec);
}

TEST(AdaptiveHedgeBreakerTest, HedgeRescuesDeadlineWithoutExtraAttempts) {
  // Base 50 ms + 500 ms spike = 550 ms against a 200 ms deadline: lost
  // without a hedge. Hedged at 100 ms the duplicate arrives at
  // 100 + 50 = 150 ms — inside the deadline — with a single Execute.
  auto source = MakeSpikySource("v", 500);
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.retry.deadline_ms = 200;
  FetchScheduler scheduler(options, dict);

  FetchRequest hedged = MakeRequest(source.get(), dict, "a1");
  hedged.hedge_delay_ms = 100;
  auto results = scheduler.ExecuteBatch({hedged});
  ASSERT_TRUE(results[0].tuples.ok());
  EXPECT_TRUE(results[0].hedged);
  EXPECT_TRUE(results[0].hedge_win);
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_EQ(results[0].timeouts, 0u);
  EXPECT_DOUBLE_EQ(results[0].duration_ms, 150);
  EXPECT_EQ(source->stats().calls, 1u);  // no second physical call
  EXPECT_EQ(scheduler.report().hedged, 1u);
  EXPECT_EQ(scheduler.report().hedge_wins, 1u);

  // The same fetch without a hedge times out.
  auto plain_source = MakeSpikySource("p", 500);
  FetchScheduler plain_scheduler(options, dict);
  auto plain = plain_scheduler.ExecuteBatch(
      {MakeRequest(plain_source.get(), dict, "a1")});
  EXPECT_FALSE(plain[0].tuples.ok());
  EXPECT_EQ(plain[0].timeouts, 1u);
  EXPECT_FALSE(plain[0].hedged);
}

TEST(AdaptiveHedgeBreakerTest, HedgedTimeoutCountsOnceTowardBreaker) {
  // Even hedged, 100 + 50 = 150 ms misses the 120 ms deadline: the
  // fetch fails — but it is ONE failure. With failure_threshold 2 the
  // breaker must stay closed after the first batch, trip after the
  // second, and fast-fail the third; a double-counting hedge would trip
  // it one batch early.
  auto source = MakeSpikySource("v", 500);
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.retry.deadline_ms = 120;
  options.retry.breaker.failure_threshold = 2;
  options.retry.breaker.cooldown_ms = 1e9;
  FetchScheduler scheduler(options, dict);

  FetchRequest request = MakeRequest(source.get(), dict, "a1");
  request.hedge_delay_ms = 100;

  auto first = scheduler.ExecuteBatch({request});
  EXPECT_FALSE(first[0].tuples.ok());
  EXPECT_TRUE(first[0].hedged);
  EXPECT_FALSE(first[0].hedge_win);
  EXPECT_FALSE(first[0].breaker_skipped);

  auto second = scheduler.ExecuteBatch({request});
  EXPECT_FALSE(second[0].tuples.ok());
  // One recorded failure so far: the breaker still admitted this fetch.
  EXPECT_FALSE(second[0].breaker_skipped);
  EXPECT_EQ(second[0].attempts, 1u);

  auto third = scheduler.ExecuteBatch({request});
  EXPECT_TRUE(third[0].breaker_skipped);
  EXPECT_EQ(third[0].attempts, 0u);
  EXPECT_EQ(source->stats().calls, 2u);
}

// ---------------------------------------------------------------------
// FetchGovernor × hedging: cross-query coalescing keys include the
// hedge delay, so a follower only ever inherits an outcome its own
// hedge configuration would have produced.

/// A source that blocks inside Execute until released, counting how
/// many calls physically entered — the deterministic way to hold one
/// query's fetch in the governor's in-flight window while another
/// query's identical fetch arrives.
class GateSource : public capability::Source {
 public:
  explicit GateSource(const std::string& name)
      : view_(SourceView::MakeUnsafe(name, {"A", "B"}, "bf")) {}

  const SourceView& view() const override { return view_; }

  Result<Relation> Execute(const SourceQuery& query) override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    released_cv_.wait(lock, [&] { return released_; });
    Relation rows(Schema::MakeUnsafe({"A", "B"}));
    rows.InsertUnsafe({S("a1"), S("b1")});
    return rows;
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    released_cv_.notify_all();
  }

  bool WaitForEntered(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    return entered_cv_.wait_for(lock, std::chrono::seconds(30),
                                [&] { return entered_ >= n; });
  }

  std::size_t entered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entered_;
  }

 private:
  SourceView view_;
  mutable std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable released_cv_;
  std::size_t entered_ = 0;
  bool released_ = false;
};

RuntimeOptions GovernedConcurrent(FetchGovernor* governor) {
  RuntimeOptions options;
  options.concurrent = true;
  options.governor = governor;
  return options;
}

TEST(AdaptiveGovernorHedgeTest, DifferentHedgeDelaysNeverShareOutcomes) {
  GateSource gate("g");
  FetchGovernor governor;
  auto dict_a = std::make_shared<ValueDictionary>();
  auto dict_b = std::make_shared<ValueDictionary>();
  FetchScheduler scheduler_a(GovernedConcurrent(&governor), dict_a);
  FetchScheduler scheduler_b(GovernedConcurrent(&governor), dict_b);

  FetchRequest request_a = MakeRequest(&gate, dict_a, "a1");
  request_a.hedge_delay_ms = 100;
  FetchRequest request_b = MakeRequest(&gate, dict_b, "a1");
  request_b.hedge_delay_ms = 200;

  std::vector<runtime::FetchResult> results_a, results_b;
  std::thread query_a(
      [&] { results_a = scheduler_a.ExecuteBatch({request_a}); });
  ASSERT_TRUE(gate.WaitForEntered(1));
  std::thread query_b(
      [&] { results_b = scheduler_b.ExecuteBatch({request_b}); });
  // The same value-level query under a DIFFERENT hedge delay must lead
  // its own source call, not follow the in-flight one.
  EXPECT_TRUE(gate.WaitForEntered(2));
  gate.Release();
  query_a.join();
  query_b.join();

  EXPECT_EQ(gate.entered(), 2u);
  ASSERT_TRUE(results_a[0].tuples.ok());
  ASSERT_TRUE(results_b[0].tuples.ok());
  EXPECT_FALSE(results_a[0].cross_coalesced);
  EXPECT_FALSE(results_b[0].cross_coalesced);
  const FetchGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.cross_query_coalesced, 0u);
  EXPECT_EQ(stats.acquired, 2u);  // two leaders, two permits
}

TEST(AdaptiveGovernorHedgeTest, EqualHedgeDelaysStillCoalesce) {
  GateSource gate("g");
  FetchGovernor governor;
  auto dict_a = std::make_shared<ValueDictionary>();
  auto dict_b = std::make_shared<ValueDictionary>();
  FetchScheduler scheduler_a(GovernedConcurrent(&governor), dict_a);
  FetchScheduler scheduler_b(GovernedConcurrent(&governor), dict_b);

  FetchRequest request_a = MakeRequest(&gate, dict_a, "a1");
  request_a.hedge_delay_ms = 100;
  FetchRequest request_b = MakeRequest(&gate, dict_b, "a1");
  request_b.hedge_delay_ms = 100;

  std::vector<runtime::FetchResult> results_a, results_b;
  std::thread query_a(
      [&] { results_a = scheduler_a.ExecuteBatch({request_a}); });
  ASSERT_TRUE(gate.WaitForEntered(1));
  std::thread query_b(
      [&] { results_b = scheduler_b.ExecuteBatch({request_b}); });
  // Identical hedge config: B registers as a follower of A's in-flight
  // call (visible in the governor stats) without touching the source.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (governor.stats().cross_query_coalesced == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(governor.stats().cross_query_coalesced, 1u);
  gate.Release();
  query_a.join();
  query_b.join();

  EXPECT_EQ(gate.entered(), 1u);
  ASSERT_TRUE(results_a[0].tuples.ok());
  ASSERT_TRUE(results_b[0].tuples.ok());
  EXPECT_EQ(results_b[0].tuples->size(), 1u);
  // Exactly one of the two fetches followed; the leader held the only
  // permit (followers wait permit-free).
  EXPECT_TRUE(results_a[0].cross_coalesced !=
              results_b[0].cross_coalesced);
  const FetchGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.acquired, 1u);
  EXPECT_EQ(stats.cross_query_coalesced, 1u);
  // The follower's scheduler still learned the outcome for its breaker
  // (a solo run would have made this call), so both report a success.
  EXPECT_EQ(scheduler_a.report().per_source.at("g").successes +
                scheduler_b.report().per_source.at("g").successes,
            2u);
}

}  // namespace
}  // namespace limcap
