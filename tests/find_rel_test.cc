#include <gtest/gtest.h>

#include "paperdata/paper_examples.h"
#include "planner/find_rel.h"

namespace limcap::planner {
namespace {

using paperdata::MakeExample21;
using paperdata::MakeExample41;
using paperdata::MakeExample51;
using paperdata::MakeExample52;
using paperdata::PaperExample;

TEST(QueryTest, ValidateAcceptsPaperExamples) {
  for (const PaperExample& example :
       {MakeExample21(), MakeExample41(), MakeExample51(),
        MakeExample52()}) {
    EXPECT_TRUE(example.query.Validate(example.catalog).ok())
        << example.query.ToString();
  }
}

TEST(QueryTest, ValidateRejectsBadQueries) {
  PaperExample example = MakeExample21();
  // Unknown view.
  EXPECT_FALSE(Query({{"Song", Value::String("t1")}}, {"Price"},
                     {Connection({"v9"})})
                   .Validate(example.catalog)
                   .ok());
  // Output not covered by a connection.
  EXPECT_FALSE(Query({{"Song", Value::String("t1")}}, {"Artist"},
                     {Connection({"v1"})})
                   .Validate(example.catalog)
                   .ok());
  // Input and output overlap.
  EXPECT_FALSE(Query({{"Price", Value::String("$1")}}, {"Price"},
                     {Connection({"v3"})})
                   .Validate(example.catalog)
                   .ok());
  // Repeated view within a connection.
  EXPECT_FALSE(Query({{"Song", Value::String("t1")}}, {"Cd"},
                     {Connection({"v1", "v1"})})
                   .Validate(example.catalog)
                   .ok());
  // No connections.
  EXPECT_FALSE(Query({{"Song", Value::String("t1")}}, {"Cd"}, {})
                   .Validate(example.catalog)
                   .ok());
  // Unknown input attribute.
  EXPECT_FALSE(Query({{"Xyz", Value::String("t1")}}, {"Cd"},
                     {Connection({"v1"})})
                   .Validate(example.catalog)
                   .ok());
}

TEST(QueryTest, AttributeAccessors) {
  PaperExample example = MakeExample21();
  EXPECT_EQ(example.query.InputAttributes(), (AttributeSet{"Song"}));
  EXPECT_EQ(example.query.OutputAttributes(), (AttributeSet{"Price"}));
  EXPECT_EQ(example.query.InputValuesFor("Song").size(), 1u);
  EXPECT_TRUE(example.query.InputValuesFor("Cd").empty());
  auto attrs =
      ConnectionAttributes(example.query.connections()[0], example.catalog);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(*attrs, (AttributeSet{"Artist", "Cd", "Price", "Song"}));
}

TEST(FindRelTest, Example41IndependentConnection) {
  // Example 5.3: the relevant views of T1 = {v1, v3} are just v1 and v3.
  PaperExample example = MakeExample41();
  auto report = FindRelevantViews(
      example.query, example.query.connections()[0], example.views);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->connection_queryable);
  EXPECT_TRUE(report->independent);
  EXPECT_TRUE(report->kernel.empty());
  EXPECT_TRUE(report->kernel_bclosure.empty());
  EXPECT_EQ(report->relevant_views, (std::set<std::string>{"v1", "v3"}));
}

TEST(FindRelTest, Example41NonIndependentConnection) {
  // Example 5.3: T2 = {v2, v3} has kernel {C}, b-closure {v1, v2, v4},
  // relevant views {v1, v2, v3, v4}.
  PaperExample example = MakeExample41();
  auto report = FindRelevantViews(
      example.query, example.query.connections()[1], example.views);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->independent);
  EXPECT_EQ(report->kernel, (AttributeSet{"C"}));
  EXPECT_EQ(report->kernel_bclosure,
            (std::set<std::string>{"v1", "v2", "v4"}));
  EXPECT_EQ(report->relevant_views,
            (std::set<std::string>{"v1", "v2", "v3", "v4"}));
  // All five views of Example 4.1 are queryable.
  EXPECT_EQ(report->queryable_views.size(), 5u);
}

TEST(FindRelTest, Example51V5IsIrrelevant) {
  // Example 5.3: T = {v1, v2, v3} has kernel {D}, whose b-closure is
  // {v4}; v5 is irrelevant even though it can bind E.
  PaperExample example = MakeExample51();
  auto report = FindRelevantViews(
      example.query, example.query.connections()[0], example.views);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->independent);
  EXPECT_EQ(report->kernel, (AttributeSet{"D"}));
  EXPECT_EQ(report->kernel_bclosure, (std::set<std::string>{"v4"}));
  EXPECT_EQ(report->relevant_views,
            (std::set<std::string>{"v1", "v2", "v3", "v4"}));
  EXPECT_EQ(report->relevant_views.count("v5"), 0u);
}

TEST(FindRelTest, Example52AllFourViewsRelevant) {
  PaperExample example = MakeExample52();
  auto report = FindRelevantViews(
      example.query, example.query.connections()[0], example.views);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->relevant_views,
            (std::set<std::string>{"v1", "v2", "v3", "v4"}));
}

TEST(FindRelTest, NonQueryableConnectionReported) {
  // Drop v4 from Example 5.2's catalog: nothing can ever be queried
  // (every remaining view needs a binding nobody supplies).
  PaperExample example = MakeExample52();
  std::vector<capability::SourceView> no_v4;
  for (const auto& view : example.views) {
    if (view.name() != "v4") no_v4.push_back(view);
  }
  auto report = FindRelevantViews(example.query,
                                  example.query.connections()[0], no_v4);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->connection_queryable);
  EXPECT_TRUE(report->queryable_views.empty());
  EXPECT_TRUE(report->relevant_views.empty());
}

TEST(FindRelTest, UnknownViewInConnectionFails) {
  PaperExample example = MakeExample41();
  EXPECT_FALSE(FindRelevantViews(example.query, Connection({"v1", "v99"}),
                                 example.views)
                   .ok());
}

TEST(AnalyzeQueryRelevanceTest, Example41UnionIsFourViews) {
  // Section 6's running example: relevant views for the whole query are
  // v1..v4, so Π(Q, V_r) drops v5's rules.
  PaperExample example = MakeExample41();
  auto relevance = AnalyzeQueryRelevance(example.query, example.views);
  ASSERT_TRUE(relevance.ok());
  EXPECT_EQ(relevance->queryable_connections.size(), 2u);
  EXPECT_TRUE(relevance->dropped_connections.empty());
  EXPECT_EQ(relevance->relevant_union,
            (std::set<std::string>{"v1", "v2", "v3", "v4"}));
  EXPECT_FALSE(relevance->ToString().empty());
}

TEST(AnalyzeQueryRelevanceTest, DropsNonQueryableConnections) {
  PaperExample example = MakeExample52();
  // Add a second, nonqueryable connection by removing v4: simulate by
  // querying a connection that includes a view requiring an unbindable
  // attribute. Build a fresh query whose second connection is {v2} only
  // (C never bindable without v4... v4 is present here, so instead use a
  // view set without v4).
  std::vector<capability::SourceView> no_v4;
  for (const auto& view : example.views) {
    if (view.name() != "v4") no_v4.push_back(view);
  }
  auto relevance = AnalyzeQueryRelevance(example.query, no_v4);
  ASSERT_TRUE(relevance.ok());
  EXPECT_TRUE(relevance->queryable_connections.empty());
  EXPECT_EQ(relevance->dropped_connections.size(), 1u);
  EXPECT_TRUE(relevance->relevant_union.empty());
}

TEST(FindRelReportTest, ToStringMentionsKernel) {
  PaperExample example = MakeExample51();
  auto report = FindRelevantViews(
      example.query, example.query.connections()[0], example.views);
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("kernel"), std::string::npos);
  EXPECT_NE(text.find("v4"), std::string::npos);
}

}  // namespace
}  // namespace limcap::planner
