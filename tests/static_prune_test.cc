// StaticAnalysisMode::kPrune with binding-flow channel pruning: the
// prune verdict is answer-preserving in every execution mode (serial,
// parallel evaluation, concurrent fetch), bit-identical across modes by
// OrderedFingerprint, and actually saves source queries when the
// program carries a reachable-but-irrelevant channel.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "capability/catalog_text.h"
#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

namespace limcap {
namespace {

using exec::AnswerReport;
using exec::ExecOptions;
using exec::OrderedFingerprint;
using exec::QueryAnswerer;
using exec::StaticAnalysisMode;
using relational::Row;
using workload::CatalogSpec;
using workload::GeneratedInstance;
using workload::GenerateInstance;
using workload::GenerateQuery;
using workload::QuerySpec;

std::set<Row> Rows(const relational::Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

/// The three execution modes of the acceptance criterion, each with
/// kPrune switched on.
ExecOptions SerialPrune() {
  ExecOptions options;
  options.static_analysis = StaticAnalysisMode::kPrune;
  return options;
}

ExecOptions ParallelEvalPrune() {
  ExecOptions options = SerialPrune();
  options.mode = datalog::Evaluator::Mode::kParallelSemiNaive;
  options.eval_threads = 4;
  return options;
}

ExecOptions ConcurrentFetchPrune() {
  ExecOptions options = SerialPrune();
  options.runtime.concurrent = true;
  options.runtime.max_in_flight = 8;
  options.runtime.per_source_max_in_flight = 8;
  return options;
}

/// Answers `example.query` unpruned and pruned in all three modes;
/// asserts the pruned answers match the unpruned baseline and that the
/// pruned executions are bit-identical to each other.
void ExpectPrunePreservesAnswers(const paperdata::PaperExample& example,
                                 const char* label) {
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto baseline = answerer.Answer(example.query);
  ASSERT_TRUE(baseline.ok()) << label << ": " << baseline.status().message();

  auto serial = answerer.Answer(example.query, SerialPrune());
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().message();
  EXPECT_TRUE(serial->analysis.binding_flow_ran) << label;
  EXPECT_EQ(Rows(serial->exec.answer), Rows(baseline->exec.answer)) << label;

  auto parallel = answerer.Answer(example.query, ParallelEvalPrune());
  ASSERT_TRUE(parallel.ok()) << label;
  EXPECT_EQ(Rows(parallel->exec.answer), Rows(baseline->exec.answer))
      << label;

  auto concurrent = answerer.Answer(example.query, ConcurrentFetchPrune());
  ASSERT_TRUE(concurrent.ok()) << label;
  EXPECT_EQ(Rows(concurrent->exec.answer), Rows(baseline->exec.answer))
      << label;

  // The pruned execution is deterministic across modes: same fetches in
  // the same canonical order, same derived facts, same answer bytes.
  const std::string fingerprint = OrderedFingerprint(serial->exec);
  EXPECT_EQ(OrderedFingerprint(parallel->exec), fingerprint) << label;
  EXPECT_EQ(OrderedFingerprint(concurrent->exec), fingerprint) << label;
}

TEST(StaticPruneTest, PaperExamplesAreAnswerPreservingInEveryMode) {
  ExpectPrunePreservesAnswers(paperdata::MakeExample21(), "example 2.1");
  ExpectPrunePreservesAnswers(paperdata::MakeExample41(), "example 4.1");
  ExpectPrunePreservesAnswers(paperdata::MakeExample51(), "example 5.1");
  ExpectPrunePreservesAnswers(paperdata::MakeExample52(), "example 5.2");
}

/// Example 2.1's v1/v3 chain plus two decoys: d1 and d2 are reachable
/// off the chain's domains (Cd, Artist) but their free attributes
/// (Stock, Bio) feed no needed domain and no goal — statically
/// irrelevant. Π(Q, V) carries alpha rules for every catalog view, so
/// the ungated unoptimized run fetches the decoys; kPrune drops their
/// channels before scheduling.
constexpr const char* kDecoyCatalog = R"(
source v1(Song, Cd) [bf] { (t1, c1) (t2, c3) }
source v3(Cd, Artist, Price) [bff] { (c1, a1, "$15") (c3, a3, "$14") }
source d1(Cd, Stock) [bf] { (c1, s7) }
source d2(Artist, Bio) [bf] { (a1, b9) }
)";

planner::Query DecoyQuery() {
  return planner::Query({{"Song", Value::String("t1")}}, {"Price"},
                        {planner::Connection({"v1", "v3"})});
}

TEST(StaticPruneTest, PruningIrrelevantChannelsSavesSourceQueries) {
  auto parsed = capability::ParseCatalog(kDecoyCatalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  QueryAnswerer answerer(&parsed->catalog, planner::DomainMap());

  auto baseline = answerer.AnswerUnoptimized(DecoyQuery());
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();

  auto pruned = answerer.AnswerUnoptimized(DecoyQuery(), SerialPrune());
  ASSERT_TRUE(pruned.ok()) << pruned.status().message();
  ASSERT_TRUE(pruned->analysis.binding_flow_ran);

  EXPECT_EQ(Rows(pruned->exec.answer), Rows(baseline->exec.answer));
  // The decoys' fetches (one per Cd / Artist constant reached) are gone.
  EXPECT_LT(pruned->exec.log.total_queries(),
            baseline->exec.log.total_queries());
  // And the verdicts said so up front.
  std::set<std::string> pruned_views;
  for (const auto& [view, template_index] :
       pruned->analysis.binding_flow.PrunedChannels()) {
    pruned_views.insert(view);
  }
  EXPECT_TRUE(pruned_views.count("d1") > 0);
  EXPECT_TRUE(pruned_views.count("d2") > 0);
  EXPECT_EQ(pruned_views.count("v1"), 0u);
  EXPECT_EQ(pruned_views.count("v3"), 0u);
  // The decoy fetches were logged in the ungated run.
  bool baseline_fetched_decoy = false;
  for (const auto& record : baseline->exec.log.records()) {
    if (record.source == "d1" || record.source == "d2") {
      baseline_fetched_decoy = true;
    }
  }
  EXPECT_TRUE(baseline_fetched_decoy);
}

TEST(StaticPruneTest, HybridAndCachedPathsHonorThePruneSet) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto baseline = answerer.Answer(example.query);
  ASSERT_TRUE(baseline.ok());

  auto hybrid = answerer.AnswerHybrid(example.query, SerialPrune());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().message();
  EXPECT_EQ(Rows(hybrid->exec.answer), Rows(baseline->exec.answer));

  auto cached = answerer.AnswerWithCache(example.query, {}, SerialPrune());
  ASSERT_TRUE(cached.ok()) << cached.status().message();
  EXPECT_EQ(Rows(cached->exec.answer), Rows(baseline->exec.answer));
}

// ---------------------------------------------------------------------
// Property: on random instances, kPrune stays answer-preserving in all
// three modes and never issues more source queries than the baseline.

struct Scenario {
  CatalogSpec::Topology topology;
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const char* topology =
      info.param.topology == CatalogSpec::Topology::kChain  ? "Chain"
      : info.param.topology == CatalogSpec::Topology::kStar ? "Star"
                                                            : "Random";
  return std::string(topology) + "Seed" + std::to_string(info.param.seed);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (auto topology :
       {CatalogSpec::Topology::kChain, CatalogSpec::Topology::kStar,
        CatalogSpec::Topology::kRandom}) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      scenarios.push_back({topology, seed});
    }
  }
  return scenarios;
}

class StaticPruneProperty : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    CatalogSpec spec;
    spec.topology = GetParam().topology;
    spec.seed = GetParam().seed * 7919 + 401;
    spec.num_views = 7;
    spec.num_attributes = 6;
    spec.tuples_per_view = 20;
    spec.domain_size = 10;
    instance_ = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.seed = GetParam().seed * 104729 + 41;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    auto query = GenerateQuery(instance_, query_spec);
    if (!query.ok()) GTEST_SKIP() << "no valid query for this instance";
    query_ = *query;
  }

  GeneratedInstance instance_;
  planner::Query query_;
};

TEST_P(StaticPruneProperty, PruneIsAnswerPreservingAcrossModes) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);

  auto baseline = answerer.AnswerUnoptimized(query_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();

  auto serial = answerer.AnswerUnoptimized(query_, SerialPrune());
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  EXPECT_EQ(Rows(serial->exec.answer), Rows(baseline->exec.answer));
  EXPECT_LE(serial->exec.log.total_queries(),
            baseline->exec.log.total_queries());

  auto parallel = answerer.AnswerUnoptimized(query_, ParallelEvalPrune());
  ASSERT_TRUE(parallel.ok());
  auto concurrent =
      answerer.AnswerUnoptimized(query_, ConcurrentFetchPrune());
  ASSERT_TRUE(concurrent.ok());

  const std::string fingerprint = OrderedFingerprint(serial->exec);
  EXPECT_EQ(OrderedFingerprint(parallel->exec), fingerprint);
  EXPECT_EQ(OrderedFingerprint(concurrent->exec), fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Workloads, StaticPruneProperty,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

}  // namespace
}  // namespace limcap
