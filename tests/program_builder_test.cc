#include <gtest/gtest.h>

#include "datalog/dependency_graph.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/safety.h"
#include "paperdata/paper_examples.h"
#include "planner/program_builder.h"
#include "planner/program_optimizer.h"

namespace limcap::planner {
namespace {

using paperdata::MakeExample21;
using paperdata::MakeExample41;
using paperdata::PaperExample;

/// The paper's Figure 2: Π(Q, V) for Example 2.1.
constexpr const char* kFigure2 = R"(
ans(P) :- v1^(t1, C), v3^(C, A, P).
ans(P) :- v1^(t1, C), v4^(C, A, P).
ans(P) :- v2^(t1, C), v3^(C, A, P).
ans(P) :- v2^(t1, C), v4^(C, A, P).
v1^(S, C) :- song(S), v1(S, C).
cd(C)     :- song(S), v1(S, C).
v2^(S, C) :- cd(C), v2(S, C).
song(S)   :- cd(C), v2(S, C).
v3^(C, A, P) :- cd(C), v3(C, A, P).
artist(A)    :- cd(C), v3(C, A, P).
price(P)     :- cd(C), v3(C, A, P).
v4^(C, A, P) :- artist(A), v4(C, A, P).
cd(C)        :- artist(A), v4(C, A, P).
price(P)     :- artist(A), v4(C, A, P).
song(t1).
)";

/// The paper's Figure 4: Π(Q, V) for Example 4.1.
constexpr const char* kFigure4 = R"(
ans(D) :- v1^(a0, C), v3^(C, D).
ans(D) :- v2^(a0, B, C), v3^(C, D).
v1^(A, C) :- domA(A), v1(A, C).
domC(C)   :- domA(A), v1(A, C).
v2^(A, B, C) :- domC(C), v2(A, B, C).
domA(A)      :- domC(C), v2(A, B, C).
domB(B)      :- domC(C), v2(A, B, C).
v3^(C, D) :- domC(C), v3(C, D).
domD(D)   :- domC(C), v3(C, D).
v4^(C, E) :- v4(C, E).
domC(C)   :- v4(C, E).
domE(E)   :- v4(C, E).
v5^(E, F) :- domE(E), v5(E, F).
domF(F)   :- domE(E), v5(E, F).
domA(a0).
)";

/// The paper's Figure 8: the optimized program for Example 4.1.
constexpr const char* kFigure8 = R"(
ans(D) :- v1^(a0, C), v3^(C, D).
ans(D) :- v2^(a0, B, C), v3^(C, D).
v1^(A, C) :- domA(A), v1(A, C).
domC(C)   :- domA(A), v1(A, C).
v2^(A, B, C) :- domC(C), v2(A, B, C).
domA(A)      :- domC(C), v2(A, B, C).
v3^(C, D) :- domC(C), v3(C, D).
domC(C)   :- v4(C, E).
domA(a0).
)";

datalog::Program Golden(const char* text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return program.value_or(datalog::Program{});
}

TEST(ProgramBuilderTest, Figure2RuleForRule) {
  PaperExample example = MakeExample21();
  auto program = BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->size(), 15u);
  EXPECT_TRUE(*program == Golden(kFigure2))
      << "generated:\n"
      << program->ToString() << "\nexpected:\n"
      << Golden(kFigure2).ToString();
}

TEST(ProgramBuilderTest, Figure4RuleForRule) {
  PaperExample example = MakeExample41();
  auto program = BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->size(), 15u);
  EXPECT_TRUE(*program == Golden(kFigure4))
      << "generated:\n"
      << program->ToString() << "\nexpected:\n"
      << Golden(kFigure4).ToString();
}

TEST(ProgramBuilderTest, GeneratedProgramsAreSafe) {
  for (const PaperExample& example :
       {MakeExample21(), MakeExample41(), paperdata::MakeExample51(),
        paperdata::MakeExample52()}) {
    auto program =
        BuildProgram(example.query, example.views, example.domains);
    ASSERT_TRUE(program.ok()) << program.status();
    EXPECT_TRUE(datalog::CheckSafety(*program).ok())
        << program->ToString();
  }
}

TEST(ProgramBuilderTest, GeneratedProgramIsRecursiveThoughQueryIsNot) {
  // Section 3.1: the program is recursive although the query is not —
  // cd and song feed each other through v1/v2.
  PaperExample example = MakeExample21();
  auto program = BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  datalog::DependencyGraph graph(*program);
  EXPECT_TRUE(graph.IsRecursive());
  EXPECT_TRUE(graph.IsRecursivePredicate("cd"));
  EXPECT_TRUE(graph.IsRecursivePredicate("song"));
}

TEST(ProgramBuilderTest, EdbPredicatesAreExactlyTheViews) {
  PaperExample example = MakeExample21();
  auto program = BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->EdbPredicates(),
            (std::set<std::string>{"v1", "v2", "v3", "v4"}));
}

TEST(ProgramBuilderTest, ConnectionReferencingMissingViewFails) {
  PaperExample example = MakeExample21();
  std::vector<capability::SourceView> only_first = {example.views[0]};
  EXPECT_FALSE(
      BuildProgram(example.query, only_first, example.domains).ok());
}

TEST(ProgramBuilderTest, MultipleInputValuesMakeOneRulePerCombination) {
  PaperExample example = MakeExample21();
  Query query({{"Song", Value::String("t1")}, {"Song", Value::String("t2")}},
              {"Price"}, {Connection({"v1", "v3"})});
  auto program = BuildProgram(query, example.views, example.domains);
  ASSERT_TRUE(program.ok()) << program.status();
  // 2 connection rules (one per Song value) + 10 view rules + 2 facts.
  std::size_t connection_rules = 0;
  std::size_t facts = 0;
  for (const datalog::Rule& rule : program->rules()) {
    if (rule.head.predicate == "ans") ++connection_rules;
    if (rule.is_fact()) ++facts;
  }
  EXPECT_EQ(connection_rules, 2u);
  EXPECT_EQ(facts, 2u);
}

TEST(ProgramBuilderTest, GoalPredicateNameIsConfigurable) {
  PaperExample example = MakeExample21();
  BuilderOptions options;
  options.goal_predicate = "result";
  options.alpha_suffix = "_hat";
  auto program =
      BuildProgram(example.query, example.views, example.domains, options);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->IdbPredicates().count("result"));
  EXPECT_TRUE(program->IdbPredicates().count("v1_hat"));
  EXPECT_FALSE(program->IdbPredicates().count("ans"));
}

TEST(ProgramBuilderTest, CachedTupleRules) {
  // Section 7.1: a cached tuple becomes an alpha fact plus domain facts.
  PaperExample example = MakeExample21();
  auto program = BuildProgram(example.query, example.views, example.domains);
  ASSERT_TRUE(program.ok());
  std::size_t before = program->size();
  ASSERT_TRUE(AddCachedTupleRules(
                  example.views[2],  // v3(Cd, Artist, Price)
                  {Value::String("c7"), Value::String("a7"),
                   Value::String("$9")},
                  example.domains, BuilderOptions{}, &*program)
                  .ok());
  EXPECT_EQ(program->size(), before + 4);  // 1 alpha fact + 3 domain facts
  bool found_alpha = false;
  for (const datalog::Rule& rule : program->rules()) {
    if (rule.is_fact() && rule.head.predicate == "v3^") found_alpha = true;
  }
  EXPECT_TRUE(found_alpha);
  EXPECT_TRUE(datalog::CheckSafety(*program).ok());
}

TEST(ProgramBuilderTest, CachedTupleArityChecked) {
  PaperExample example = MakeExample21();
  datalog::Program program;
  EXPECT_FALSE(AddCachedTupleRules(example.views[2],
                                   {Value::String("c7")}, example.domains,
                                   BuilderOptions{}, &program)
                   .ok());
}

TEST(ProgramBuilderTest, DomainKnowledgeRule) {
  // Section 7.1: known departments become domain facts.
  DomainMap domains;
  datalog::Program program;
  AddDomainKnowledgeRule("Dept", Value::String("CS"), domains, &program);
  ASSERT_EQ(program.size(), 1u);
  // "CS" prints quoted: bare it would re-parse as a variable.
  EXPECT_EQ(program.rules()[0].ToString(), "domDept(\"CS\").");
}

TEST(ProgramBuilderTest, AttributeVariableEscapesLowercase) {
  EXPECT_EQ(AttributeVariable("Song"), "Song");
  EXPECT_EQ(AttributeVariable("dept"), "X_dept");
}

TEST(RemoveUselessRulesTest, Figure8RuleForRule) {
  PaperExample example = MakeExample41();
  auto plan = PlanQuery(example.query, example.views, example.domains);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->optimized_program.size(), 9u);
  EXPECT_TRUE(plan->optimized_program == Golden(kFigure8))
      << "generated:\n"
      << plan->optimized_program.ToString() << "\nexpected:\n"
      << Golden(kFigure8).ToString();
  // Π(Q, V_r) drops exactly v5's two rules from Figure 4.
  EXPECT_EQ(plan->relevant_program.size(), 13u);
  // Useless-rule removal drops domB, domD, v4^, domE.
  EXPECT_EQ(plan->removed_rules.size(), 4u);
}

TEST(RemoveUselessRulesTest, KeepsEverythingWhenAllReachable) {
  auto program = datalog::ParseProgram(
      "ans(X) :- p(X).\n"
      "p(X) :- e(X).\n");
  ASSERT_TRUE(program.ok());
  OptimizedProgram optimized = RemoveUselessRules(*program, "ans");
  EXPECT_EQ(optimized.program.size(), 2u);
  EXPECT_TRUE(optimized.removed_rules.empty());
}

TEST(DecomposeWideRulesTest, ShortRulesUntouched) {
  auto program = datalog::ParseProgram(
      "ans(X) :- a(X, Y), b(Y, Z), c(Z, X).\n"
      "p(X) :- q(X).\n");
  ASSERT_TRUE(program.ok());
  datalog::Program decomposed = DecomposeWideRules(*program, 3);
  EXPECT_TRUE(decomposed == *program);
  // Threshold < 2 disables decomposition entirely.
  auto wide = datalog::ParseProgram(
      "ans(X) :- a(X,A), b(A,B), c(B,C), d(C,X).\n");
  ASSERT_TRUE(wide.ok());
  EXPECT_TRUE(DecomposeWideRules(*wide, 0) == *wide);
  EXPECT_TRUE(DecomposeWideRules(*wide, 1) == *wide);
}

TEST(DecomposeWideRulesTest, ChainBecomesBinaryJoins) {
  auto program = datalog::ParseProgram(
      "ans(E) :- a(x0, B), b(B, C), c(C, D), d(D, E).\n");
  ASSERT_TRUE(program.ok());
  datalog::Program decomposed = DecomposeWideRules(*program, 2);
  // 4 atoms -> 3 binary rules through 2 auxiliary predicates.
  EXPECT_EQ(decomposed.size(), 3u);
  for (const datalog::Rule& rule : decomposed.rules()) {
    EXPECT_LE(rule.body.size(), 2u);
    EXPECT_TRUE(datalog::CheckRuleSafety(rule).ok()) << rule.ToString();
  }
  // Auxiliaries keep only the variables still needed: after a,b only C
  // (D, E still to come; B is dead).
  EXPECT_EQ(decomposed.rules()[0].head.arity(), 1u);
}

TEST(DecomposeWideRulesTest, SemanticsPreserved) {
  // Evaluate the wide rule and its decomposition over the same EDB.
  const char* wide_text =
      "ans(A, E) :- e(A, B), e(B, C), e(C, D), e(D, E).\n";
  auto wide = datalog::ParseProgram(wide_text);
  ASSERT_TRUE(wide.ok());
  datalog::Program narrow = DecomposeWideRules(*wide, 2);

  auto eval = [](const datalog::Program& program) {
    datalog::FactStore store;
    // A small random-ish graph.
    const char* edges[][2] = {{"a", "b"}, {"b", "c"}, {"c", "d"},
                              {"d", "e"}, {"b", "d"}, {"a", "c"},
                              {"d", "a"}, {"e", "b"}};
    for (const auto& edge : edges) {
      EXPECT_TRUE(store
                      .Insert("e", {Value::String(edge[0]),
                                    Value::String(edge[1])})
                      .ok());
    }
    auto evaluator = datalog::Evaluator::Create(program, &store);
    EXPECT_TRUE(evaluator.ok());
    EXPECT_TRUE((*evaluator)->Run().ok());
    std::set<std::vector<Value>> rows;
    for (const auto& row : store.Facts("ans")) {
      rows.insert(store.Decode(row));
    }
    return rows;
  };
  EXPECT_EQ(eval(*wide), eval(narrow));
}

TEST(DecomposeWideRulesTest, PlanQueryAppliesThreshold) {
  // A 4-view connection yields a 4-atom connection rule; the planned
  // programs must contain no body wider than the default threshold.
  PaperExample example = MakeExample21();
  Query query({{"Song", Value::String("t1")}}, {"Price"},
              {Connection({"v1", "v2", "v3", "v4"})});
  auto plan = PlanQuery(query, example.views, example.domains);
  ASSERT_TRUE(plan.ok());
  for (const datalog::Rule& rule : plan->optimized_program.rules()) {
    EXPECT_LE(rule.body.size(), 3u) << rule.ToString();
  }
  bool has_aux = false;
  for (const datalog::Rule& rule : plan->optimized_program.rules()) {
    if (rule.head.predicate.rfind("aux_", 0) == 0) has_aux = true;
  }
  EXPECT_TRUE(has_aux);
}

TEST(RemoveUselessRulesTest, Idempotent) {
  PaperExample example = MakeExample41();
  auto plan = PlanQuery(example.query, example.views, example.domains);
  ASSERT_TRUE(plan.ok());
  OptimizedProgram again =
      RemoveUselessRules(plan->optimized_program, "ans");
  EXPECT_TRUE(again.removed_rules.empty());
  EXPECT_TRUE(again.program == plan->optimized_program);
}

TEST(RemoveUselessRulesTest, RemovesCascades) {
  // r is used only by q, q only by nothing reachable from ans.
  auto program = datalog::ParseProgram(
      "ans(X) :- p(X).\n"
      "p(X) :- e(X).\n"
      "q(X) :- r(X).\n"
      "r(X) :- e(X).\n");
  ASSERT_TRUE(program.ok());
  OptimizedProgram optimized = RemoveUselessRules(*program, "ans");
  EXPECT_EQ(optimized.program.size(), 2u);
  EXPECT_EQ(optimized.removed_rules.size(), 2u);
}

}  // namespace
}  // namespace limcap::planner
