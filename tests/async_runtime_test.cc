#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "capability/in_memory_source.h"
#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "runtime/circuit_breaker.h"
#include "runtime/fault_injection.h"
#include "runtime/fetch_scheduler.h"
#include "runtime/runtime_config.h"
#include "workload/generator.h"

namespace limcap::runtime {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceQuery;
using capability::SourceView;
using relational::Relation;
using relational::Schema;

Value S(const char* text) { return Value::String(text); }

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, DisabledByDefault) {
  CircuitBreaker breaker;  // threshold 0: never trips
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.Allow(0));
    breaker.RecordFailure(0);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, TripsCoolsAndRecovers) {
  BreakerPolicy policy;
  policy.failure_threshold = 2;
  policy.cooldown_ms = 100;
  CircuitBreaker breaker(policy);
  EXPECT_TRUE(breaker.Allow(0));
  breaker.RecordFailure(10);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(10));
  breaker.RecordFailure(20);  // second consecutive failure: trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow(50));   // still cooling (until 120)
  EXPECT_TRUE(breaker.Allow(120));   // cooled: half-open, one probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(120));  // probe in flight: fail fast
  breaker.RecordFailure(170);        // probe failed: re-open
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow(200));
  EXPECT_TRUE(breaker.Allow(270));
  breaker.RecordSuccess();  // probe succeeded: closed, counters reset
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffWithCap) {
  RetryPolicy policy;
  policy.backoff_base_ms = 25;
  policy.backoff_max_ms = 80;
  policy.jitter = 0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(2, rng), 25);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(3, rng), 50);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(4, rng), 80);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeAttempt(5, rng), 80);
}

TEST(RetryPolicyTest, JitterIsSeededAndBounded) {
  RetryPolicy policy;
  policy.jitter = 0.5;
  Rng a(7);
  Rng b(7);
  const double first = policy.BackoffBeforeAttempt(2, a);
  EXPECT_DOUBLE_EQ(first, policy.BackoffBeforeAttempt(2, b));
  EXPECT_GE(first, policy.backoff_base_ms);
  EXPECT_LE(first, policy.backoff_base_ms * 1.5);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

std::unique_ptr<InMemorySource> MakePairSource(const std::string& name) {
  Relation data(Schema::MakeUnsafe({"A", "B"}));
  data.InsertUnsafe({S("a1"), S("b1")});
  data.InsertUnsafe({S("a1"), S("b2")});
  data.InsertUnsafe({S("a2"), S("b3")});
  return std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe(name, {"A", "B"}, "bf"), std::move(data)));
}

TEST(FaultInjectionTest, PerQueryFailFirstIsOrderIndependent) {
  FaultSpec spec;
  spec.fail_first_per_query = 1;
  FaultInjectingSource source(MakePairSource("v"), spec);
  auto dict = std::make_shared<ValueDictionary>();
  SourceQuery q1 = SourceQuery::MakeUnsafe(source.view(), dict, {{"A", S("a1")}});
  SourceQuery q2 = SourceQuery::MakeUnsafe(source.view(), dict, {{"A", S("a2")}});
  // Interleaved: each query's FIRST attempt fails, second succeeds,
  // regardless of the global call order.
  EXPECT_FALSE(source.Execute(q1).ok());
  EXPECT_FALSE(source.Execute(q2).ok());
  auto a1 = source.Execute(q1);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->size(), 2u);
  EXPECT_TRUE(source.Execute(q2).ok());
  EXPECT_EQ(source.stats().injected_failures, 2u);
}

TEST(FaultInjectionTest, PerQueryKeyIsDictionaryIndependent) {
  FaultSpec spec;
  spec.fail_first_per_query = 1;
  FaultInjectingSource source(MakePairSource("v"), spec);
  auto dict_a = std::make_shared<ValueDictionary>();
  auto dict_b = std::make_shared<ValueDictionary>();
  dict_b->Intern(S("padding"));  // same value, different ids across dicts
  SourceQuery qa =
      SourceQuery::MakeUnsafe(source.view(), dict_a, {{"A", S("a1")}});
  SourceQuery qb =
      SourceQuery::MakeUnsafe(source.view(), dict_b, {{"A", S("a1")}});
  EXPECT_FALSE(source.Execute(qa).ok());
  // Same bound values => same query identity: the retry (under another
  // dictionary) is attempt #2 and succeeds.
  EXPECT_TRUE(source.Execute(qb).ok());
}

TEST(FaultInjectionTest, TruncatesResults) {
  FaultSpec spec;
  spec.max_result_tuples = 1;
  FaultInjectingSource source(MakePairSource("v"), spec);
  auto dict = std::make_shared<ValueDictionary>();
  SourceQuery q = SourceQuery::MakeUnsafe(source.view(), dict, {{"A", S("a1")}});
  auto answer = source.Execute(q);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 1u);
  EXPECT_EQ(source.stats().truncations, 1u);
}

TEST(FaultInjectionTest, LatencySpikesAreReported) {
  FaultSpec spec;
  spec.latency_spike_rate = 1.0;
  spec.latency_spike_ms = 500;
  FaultInjectingSource source(MakePairSource("v"), spec);
  auto dict = std::make_shared<ValueDictionary>();
  SourceQuery q = SourceQuery::MakeUnsafe(source.view(), dict, {{"A", S("a1")}});
  TimedSource::Timing timing;
  ASSERT_TRUE(source.ExecuteTimed(q, &timing).ok());
  EXPECT_DOUBLE_EQ(timing.added_latency_ms, 500);
  EXPECT_EQ(source.stats().latency_spikes, 1u);
}

// ---------------------------------------------------------------------------
// Fetch scheduler
// ---------------------------------------------------------------------------

FetchRequest MakeRequest(capability::Source* source, ValueDictionaryPtr dict,
                         const char* value) {
  FetchRequest request;
  request.source = source;
  request.query =
      SourceQuery::MakeUnsafe(source->view(), std::move(dict), {{"A", S(value)}});
  return request;
}

TEST(FetchSchedulerTest, CoalescesIdenticalInFlightQueries) {
  auto source = MakePairSource("v");
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  FetchScheduler scheduler(options, dict);
  std::vector<FetchRequest> requests;
  requests.push_back(MakeRequest(source.get(), dict, "a1"));
  requests.push_back(MakeRequest(source.get(), dict, "a1"));
  requests.push_back(MakeRequest(source.get(), dict, "a2"));
  auto results = scheduler.ExecuteBatch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].coalesced);
  EXPECT_TRUE(results[1].coalesced);
  EXPECT_FALSE(results[2].coalesced);
  ASSERT_TRUE(results[1].tuples.ok());
  EXPECT_EQ(results[1].tuples->size(), 2u);
  EXPECT_EQ(scheduler.report().coalesced_hits, 1u);
  EXPECT_EQ(scheduler.report().total_attempts, 2u);  // two source calls
}

TEST(FetchSchedulerTest, RetriesUntilSuccessAndAccountsBackoff) {
  FaultSpec spec;
  spec.fail_first_per_query = 2;
  auto source = std::make_unique<FaultInjectingSource>(MakePairSource("v"), spec);
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 10;
  options.retry.jitter = 0;
  options.latency.default_latency_ms = 50;
  FetchScheduler scheduler(options, dict);
  auto results = scheduler.ExecuteBatch({MakeRequest(source.get(), dict, "a1")});
  ASSERT_TRUE(results[0].tuples.ok());
  EXPECT_EQ(results[0].attempts, 3u);
  EXPECT_EQ(results[0].retries, 2u);
  // 3 attempts x 50 ms + backoffs 10 + 20.
  EXPECT_DOUBLE_EQ(results[0].duration_ms, 180);
  EXPECT_DOUBLE_EQ(scheduler.report().simulated_makespan_ms, 180);
}

TEST(FetchSchedulerTest, DeadlineTimesOutSlowAttempts) {
  FaultSpec spec;
  spec.latency_spike_rate = 1.0;
  spec.latency_spike_ms = 1000;
  auto source = std::make_unique<FaultInjectingSource>(MakePairSource("v"), spec);
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.retry.max_attempts = 2;
  options.retry.deadline_ms = 200;
  options.retry.backoff_base_ms = 10;
  options.retry.jitter = 0;
  FetchScheduler scheduler(options, dict);
  auto results = scheduler.ExecuteBatch({MakeRequest(source.get(), dict, "a1")});
  ASSERT_FALSE(results[0].tuples.ok());
  EXPECT_EQ(results[0].tuples.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(results[0].timeouts, 2u);
  // Each timed-out attempt costs exactly the deadline, plus one backoff.
  EXPECT_DOUBLE_EQ(results[0].duration_ms, 410);
  EXPECT_EQ(scheduler.report().total_timeouts, 2u);
  EXPECT_EQ(scheduler.report().failed_views.count("v"), 1u);
}

TEST(FetchSchedulerTest, ConcurrentMakespanRespectsPerSourceCap) {
  auto s1 = MakePairSource("s1");
  auto s2 = MakePairSource("s2");
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.concurrent = true;
  options.max_in_flight = 8;
  options.per_source_max_in_flight = 1;
  options.latency.default_latency_ms = 50;
  FetchScheduler scheduler(options, dict);
  std::vector<FetchRequest> requests;
  requests.push_back(MakeRequest(s1.get(), dict, "a1"));
  requests.push_back(MakeRequest(s1.get(), dict, "a2"));
  requests.push_back(MakeRequest(s2.get(), dict, "a1"));
  requests.push_back(MakeRequest(s2.get(), dict, "a2"));
  auto results = scheduler.ExecuteBatch(requests);
  for (const auto& result : results) ASSERT_TRUE(result.tuples.ok());
  // Each source serializes its two 50 ms fetches; the sources overlap:
  // makespan 100 ms versus 200 ms issued one at a time.
  EXPECT_DOUBLE_EQ(scheduler.report().simulated_makespan_ms, 100);
  EXPECT_DOUBLE_EQ(scheduler.report().simulated_sequential_ms, 200);
  EXPECT_DOUBLE_EQ(scheduler.report().SequentialSpeedup(), 2.0);
  // The timeline places s1's fetches back to back.
  EXPECT_DOUBLE_EQ(results[0].start_ms, 0);
  EXPECT_DOUBLE_EQ(results[1].start_ms, 50);
  EXPECT_DOUBLE_EQ(results[2].start_ms, 0);
  EXPECT_DOUBLE_EQ(results[3].start_ms, 50);
}

TEST(FetchSchedulerTest, BreakerTripsSkipsAndRecovers) {
  FaultSpec spec;
  spec.fail_first_calls = 2;
  auto flaky = std::make_unique<FaultInjectingSource>(MakePairSource("v"), spec);
  auto healthy = MakePairSource("h");
  auto dict = std::make_shared<ValueDictionary>();
  RuntimeOptions options;
  options.latency.default_latency_ms = 50;
  options.retry.breaker.failure_threshold = 2;
  options.retry.breaker.cooldown_ms = 75;
  FetchScheduler scheduler(options, dict);

  // Batch 1: two failures trip the breaker (open until 100 + 75 = 175).
  auto batch1 = scheduler.ExecuteBatch({MakeRequest(flaky.get(), dict, "a1"),
                                        MakeRequest(flaky.get(), dict, "a2")});
  EXPECT_FALSE(batch1[0].tuples.ok());
  EXPECT_FALSE(batch1[1].tuples.ok());
  EXPECT_EQ(scheduler.report().per_source.at("v").breaker_state,
            BreakerState::kOpen);

  // Batches 2-3: v is skipped without a source call; the healthy fetches
  // advance the simulated clock to 200.
  auto batch2 = scheduler.ExecuteBatch({MakeRequest(healthy.get(), dict, "a1"),
                                        MakeRequest(flaky.get(), dict, "a1")});
  EXPECT_TRUE(batch2[0].tuples.ok());
  EXPECT_TRUE(batch2[1].breaker_skipped);
  EXPECT_EQ(batch2[1].tuples.status().code(), StatusCode::kUnavailable);
  auto batch3 = scheduler.ExecuteBatch({MakeRequest(healthy.get(), dict, "a2"),
                                        MakeRequest(flaky.get(), dict, "a2")});
  EXPECT_TRUE(batch3[1].breaker_skipped);
  EXPECT_DOUBLE_EQ(scheduler.simulated_now_ms(), 200);
  EXPECT_EQ(scheduler.report().per_source.at("v").breaker_skips, 2u);

  // Batch 4: cooled down; the half-open probe succeeds (the injected
  // failures are spent) and closes the breaker.
  auto batch4 = scheduler.ExecuteBatch({MakeRequest(flaky.get(), dict, "a1")});
  EXPECT_TRUE(batch4[0].tuples.ok());
  EXPECT_EQ(scheduler.report().per_source.at("v").breaker_state,
            BreakerState::kClosed);
  EXPECT_EQ(flaky->stats().calls, 3u);  // two failures + one probe
}

// ---------------------------------------------------------------------------
// Runtime config
// ---------------------------------------------------------------------------

TEST(RuntimeConfigTest, ParsesFullConfig) {
  auto options = ParseRuntimeConfig(R"(
% async runtime for the flaky-travel demo
concurrent on
max_in_flight 8
per_source_max_in_flight 2
coalesce off
seed 7
latency default 40
latency v4 200
default attempts=3 backoff_ms=10 deadline_ms=500
view v4 attempts=5 breaker_failures=3 breaker_cooldown_ms=1000
)");
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_TRUE(options->concurrent);
  EXPECT_EQ(options->max_in_flight, 8u);
  EXPECT_EQ(options->per_source_max_in_flight, 2u);
  EXPECT_FALSE(options->coalesce);
  EXPECT_EQ(options->seed, 7u);
  EXPECT_DOUBLE_EQ(options->latency.default_latency_ms, 40);
  EXPECT_DOUBLE_EQ(options->latency.LatencyOf("v4"), 200);
  EXPECT_EQ(options->retry.max_attempts, 3u);
  EXPECT_DOUBLE_EQ(options->retry.deadline_ms, 500);
  const RetryPolicy& v4 = options->PolicyFor("v4");
  EXPECT_EQ(v4.max_attempts, 5u);
  // Inherited from the default policy as configured above it.
  EXPECT_DOUBLE_EQ(v4.backoff_base_ms, 10);
  EXPECT_EQ(v4.breaker.failure_threshold, 3u);
  EXPECT_DOUBLE_EQ(v4.breaker.cooldown_ms, 1000);
  EXPECT_FALSE(options->PolicyFor("v1").breaker.enabled());
}

TEST(RuntimeConfigTest, RejectsUnknownDirectivesWithLineNumbers) {
  auto bad = ParseRuntimeConfig("concurrent on\nwarp_speed 9\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  auto bad_key = ParseRuntimeConfig("default atempts=3\n");
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("atempts"), std::string::npos);
}

TEST(RuntimeConfigTest, RendersPerViewPolicies) {
  auto options = ParseRuntimeConfig(
      "latency v2 120\ndefault attempts=2\nview v2 breaker_failures=4\n");
  ASSERT_TRUE(options.ok());
  std::string text = RenderRuntimePolicies({"v1", "v2"}, *options, false);
  EXPECT_NE(text.find("v1"), std::string::npos);
  EXPECT_NE(text.find("v2"), std::string::npos);
  EXPECT_NE(text.find("120"), std::string::npos);
  std::string json = RenderRuntimePolicies({"v1", "v2"}, *options, true);
  EXPECT_NE(json.find("\"view\": \"v2\""), std::string::npos);
  EXPECT_NE(json.find("\"breaker_failures\": 4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: concurrent execution is bit-identical to serial
// ---------------------------------------------------------------------------

/// Everything observable about an execution, id-level: answer rows in
/// order, the full access trace, every derived fact, the dictionary size.
/// (Shared with the tracing property tests — see exec/fingerprint.h.)
std::string Fingerprint(const exec::ExecResult& exec) {
  return exec::OrderedFingerprint(exec);
}

exec::ExecOptions ConcurrentOptions(std::size_t threads = 8) {
  exec::ExecOptions options;
  options.runtime.concurrent = true;
  options.runtime.max_in_flight = threads;
  options.runtime.per_source_max_in_flight = threads;
  return options;
}

void ExpectSerialConcurrentBitIdentical(const SourceCatalog& catalog,
                                        const planner::DomainMap& domains,
                                        const planner::Query& query,
                                        const exec::ExecOptions& base = {}) {
  exec::QueryAnswerer answerer(&catalog, domains);
  auto serial = answerer.Answer(query, base);
  exec::ExecOptions concurrent_options = base;
  concurrent_options.runtime = ConcurrentOptions().runtime;
  auto concurrent = answerer.Answer(query, concurrent_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(concurrent.ok()) << concurrent.status();
  EXPECT_EQ(Fingerprint(serial->exec), Fingerprint(concurrent->exec));
  EXPECT_EQ(concurrent->exec.post_ingest_translations, 0u);
  EXPECT_GE(concurrent->exec.fetch_report.SequentialSpeedup(), 1.0);
}

TEST(ParallelAsyncRuntimeTest, Example21EightThreadsBitIdentical) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  ExpectSerialConcurrentBitIdentical(example.catalog, example.domains,
                                     example.query);
}

TEST(ParallelAsyncRuntimeTest, AllPaperExamplesBitIdentical) {
  for (auto make :
       {paperdata::MakeExample21, paperdata::MakeExample41,
        paperdata::MakeExample51, paperdata::MakeExample52}) {
    paperdata::PaperExample example = make();
    ExpectSerialConcurrentBitIdentical(example.catalog, example.domains,
                                       example.query);
  }
}

TEST(ParallelAsyncRuntimeTest, BudgetedRunBitIdentical) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  exec::ExecOptions base;
  base.max_source_queries = 5;
  ExpectSerialConcurrentBitIdentical(example.catalog, example.domains,
                                     example.query, base);
}

TEST(ParallelAsyncRuntimeTest, RandomWorkloadsBitIdentical) {
  for (auto topology :
       {workload::CatalogSpec::Topology::kChain,
        workload::CatalogSpec::Topology::kStar,
        workload::CatalogSpec::Topology::kRandom}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      workload::CatalogSpec spec;
      spec.topology = topology;
      spec.seed = seed;
      spec.num_views = 8;
      spec.tuples_per_view = 30;
      spec.domain_size = 10;
      workload::GeneratedInstance instance =
          workload::GenerateInstance(spec);
      workload::QuerySpec query_spec;
      query_spec.seed = seed + 100;
      auto query = workload::GenerateQuery(instance, query_spec);
      if (!query.ok()) continue;  // no valid query for this shape
      ExpectSerialConcurrentBitIdentical(instance.catalog, instance.domains,
                                         *query);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: faults, retries, and degraded answers
// ---------------------------------------------------------------------------

/// Rebuilds `instance`'s catalog with every source wrapped in a
/// FaultInjectingSource configured by `spec`.
SourceCatalog WrapAll(const workload::GeneratedInstance& instance,
                      const FaultSpec& spec) {
  SourceCatalog catalog;
  for (const SourceView& view : instance.views) {
    auto inner = std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
        view, instance.full_data.at(view.name())));
    catalog.RegisterUnsafe(
        std::make_unique<FaultInjectingSource>(std::move(inner), spec));
  }
  return catalog;
}

TEST(ParallelAsyncRuntimeTest, FailThenRecoverReachesMaximalAnswer) {
  workload::CatalogSpec spec;
  spec.topology = workload::CatalogSpec::Topology::kChain;
  spec.seed = 11;
  spec.num_views = 6;
  spec.tuples_per_view = 25;
  spec.domain_size = 10;
  workload::GeneratedInstance instance = workload::GenerateInstance(spec);

  // Pick the first generated query that actually exercises the sources —
  // some seeds yield queries the planner answers without any fetches.
  exec::QueryAnswerer clean(&instance.catalog, instance.domains);
  Result<planner::Query> query = Status::NotFound("no query");
  Result<exec::AnswerReport> clean_report = Status::NotFound("no run");
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    workload::QuerySpec query_spec;
    query_spec.seed = seed;
    auto candidate = workload::GenerateQuery(instance, query_spec);
    if (!candidate.ok()) continue;
    auto run = clean.Answer(*candidate);
    if (!run.ok() || run->exec.log.total_queries() == 0) continue;
    query = std::move(candidate);
    clean_report = std::move(run);
    break;
  }
  ASSERT_TRUE(query.ok()) << "no source-exercising query found";

  // Every query to every source fails twice before succeeding; with three
  // attempts per fetch the evaluation still reaches the maximal answer.
  FaultSpec faults;
  faults.fail_first_per_query = 2;
  SourceCatalog flaky = WrapAll(instance, faults);
  exec::QueryAnswerer answerer(&flaky, instance.domains);
  exec::ExecOptions options = ConcurrentOptions();
  options.continue_on_source_error = true;
  options.runtime.retry.max_attempts = 3;
  auto report = answerer.Answer(*query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->exec.fetch_report.degraded());
  EXPECT_GT(report->exec.fetch_report.total_retries, 0u);
  EXPECT_EQ(Fingerprint(report->exec), Fingerprint(clean_report->exec));
}

TEST(ParallelAsyncRuntimeTest, DownSourceYieldsAnnotatedPartialAnswer) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  SourceCatalog catalog;
  for (const SourceView& view : example.views) {
    auto* source = dynamic_cast<InMemorySource*>(
        example.catalog.Find(view.name()).value());
    auto copy = std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data()));
    if (view.name() == "v4") {
      FaultSpec faults;
      faults.fail_rate = 1.0;  // permanently down
      catalog.RegisterUnsafe(std::make_unique<FaultInjectingSource>(
          std::move(copy), faults));
    } else {
      catalog.RegisterUnsafe(std::move(copy));
    }
  }
  exec::QueryAnswerer answerer(&catalog, example.domains);
  exec::ExecOptions options = ConcurrentOptions();
  options.continue_on_source_error = true;
  options.runtime.retry.max_attempts = 2;
  auto report = answerer.Answer(example.query, options);
  ASSERT_TRUE(report.ok()) << report.status();
  // Sound partial answer: the v1-v3 path still yields $15.
  EXPECT_TRUE(report->exec.answer.Contains({S("$15")}));
  EXPECT_FALSE(report->exec.answer.Contains({S("$13")}));
  const FetchReport& fetch = report->exec.fetch_report;
  EXPECT_TRUE(fetch.degraded());
  EXPECT_EQ(fetch.failed_views.count("v4"), 1u);
  ASSERT_FALSE(fetch.degraded_connections.empty());
  for (const std::string& connection : fetch.degraded_connections) {
    EXPECT_NE(connection.find("v4"), std::string::npos) << connection;
  }
  // Failed fetches burned their retries.
  EXPECT_GT(fetch.total_retries, 0u);
  const std::string rendered = fetch.ToString();
  EXPECT_NE(rendered.find("DEGRADED"), std::string::npos);
  EXPECT_NE(rendered.find("v4"), std::string::npos);
}

}  // namespace
}  // namespace limcap::runtime
