#include <gtest/gtest.h>

#include <set>

#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

namespace limcap::exec {
namespace {

using paperdata::MakeExample21;
using paperdata::MakeExample41;
using relational::Row;

std::set<Row> Rows(const relational::Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

TEST(HybridExecTest, Example21SameAnswerAsDatalog) {
  auto example = MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto datalog = answerer.Answer(example.query);
  auto hybrid = answerer.AnswerHybrid(example.query);
  ASSERT_TRUE(datalog.ok());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  EXPECT_EQ(Rows(datalog->exec.answer), Rows(hybrid->exec.answer));
}

TEST(HybridExecTest, Example41MixesStrategies) {
  // T1 = {v1, v3} is independent (bind-join); T2 = {v2, v3} runs through
  // the Datalog loop. The union matches the pure-Datalog answer.
  auto example = MakeExample41();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto datalog = answerer.Answer(example.query);
  auto hybrid = answerer.AnswerHybrid(example.query);
  ASSERT_TRUE(datalog.ok());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  EXPECT_EQ(Rows(hybrid->exec.answer),
            (std::set<Row>{{Value::String("d1")}, {Value::String("d2")}}));
  EXPECT_EQ(Rows(datalog->exec.answer), Rows(hybrid->exec.answer));
}

TEST(HybridExecTest, PureIndependentQueryUsesOnlyBindJoins) {
  // A query with only the independent connection: the hybrid path issues
  // exactly the chain's queries (2) and matches the oracle.
  auto example = MakeExample41();
  planner::Query t1_only(example.query.inputs(), example.query.outputs(),
                         {example.query.connections()[0]});
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto hybrid = answerer.AnswerHybrid(t1_only);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(hybrid->exec.log.total_queries(), 2u);  // v1(a0), v3(c1)
  auto complete = CompleteAnswer(t1_only, example.catalog);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(Rows(hybrid->exec.answer), Rows(*complete));
}

class HybridAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HybridAgreement, MatchesDatalogOnRandomInstances) {
  workload::CatalogSpec spec;
  spec.topology = workload::CatalogSpec::Topology::kRandom;
  spec.num_views = 8;
  spec.num_attributes = 7;
  spec.tuples_per_view = 25;
  spec.domain_size = 12;
  spec.seed = GetParam() * 41 + 19;
  auto instance = workload::GenerateInstance(spec);
  workload::QuerySpec query_spec;
  query_spec.num_connections = 3;
  query_spec.views_per_connection = 2;
  query_spec.seed = GetParam() * 11 + 1;
  auto query = workload::GenerateQuery(instance, query_spec);
  if (!query.ok()) GTEST_SKIP();

  QueryAnswerer answerer(&instance.catalog, instance.domains);
  auto datalog = answerer.Answer(*query);
  auto hybrid = answerer.AnswerHybrid(*query);
  ASSERT_TRUE(datalog.ok());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  EXPECT_EQ(Rows(datalog->exec.answer), Rows(hybrid->exec.answer))
      << query->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridAgreement,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

}  // namespace
}  // namespace limcap::exec
