#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "capability/in_memory_source.h"
#include "exec/baseline_executor.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "planner/closure.h"
#include "planner/find_rel.h"
#include "planner/program_builder.h"

namespace limcap {
namespace {

using capability::AttributeSet;
using capability::BindingPattern;
using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceQuery;
using capability::SourceView;
using relational::Relation;
using relational::Row;

Value S(const char* text) { return Value::String(text); }

/// book(Author, Title, Price) answering either author-bound or
/// title-bound queries — the paper's amazon.com (Example 1.1) accepts
/// several search forms.
SourceView BookView() {
  return SourceView::MakeUnsafe("book", {"Author", "Title", "Price"},
                                std::vector<std::string>{"bff", "fbf"});
}

Relation BookData() {
  Relation data(BookView().schema());
  data.InsertUnsafe({S("ullman"), S("db_systems"), S("$95")});
  data.InsertUnsafe({S("ullman"), S("automata"), S("$88")});
  data.InsertUnsafe({S("widom"), S("db_systems"), S("$95")});
  return data;
}

TEST(MultiTemplateViewTest, MakeValidation) {
  auto schema = relational::Schema::MakeUnsafe({"A", "B"});
  auto bf = *BindingPattern::Parse("bf");
  auto fb = *BindingPattern::Parse("fb");
  auto bb = *BindingPattern::Parse("bb");
  auto b = *BindingPattern::Parse("b");

  EXPECT_TRUE(SourceView::Make("v", schema,
                               std::vector<BindingPattern>{bf, fb})
                  .ok());
  // No templates.
  EXPECT_FALSE(
      SourceView::Make("v", schema, std::vector<BindingPattern>{}).ok());
  // Arity mismatch in the second template.
  EXPECT_FALSE(SourceView::Make("v", schema,
                                std::vector<BindingPattern>{bf, b})
                   .ok());
  // Duplicate templates.
  EXPECT_FALSE(SourceView::Make("v", schema,
                                std::vector<BindingPattern>{bf, bf})
                   .ok());
  // bb is redundant given bf (anything satisfying bb satisfies bf).
  EXPECT_FALSE(SourceView::Make("v", schema,
                                std::vector<BindingPattern>{bf, bb})
                   .ok());
}

TEST(MultiTemplateViewTest, SatisfiedTemplate) {
  SourceView view = BookView();
  EXPECT_TRUE(view.has_multiple_templates());
  EXPECT_EQ(view.SatisfiedTemplate({"Author"}), 0u);
  EXPECT_EQ(view.SatisfiedTemplate({"Title"}), 1u);
  EXPECT_EQ(view.SatisfiedTemplate({"Author", "Title"}), 0u);
  EXPECT_FALSE(view.SatisfiedTemplate({"Price"}).has_value());
  EXPECT_TRUE(view.RequirementsSatisfiedBy({"Title", "Price"}));
  EXPECT_FALSE(view.RequirementsSatisfiedBy({}));
  EXPECT_EQ(view.ToString(), "book(Author, Title, Price) [bff|fbf]");
  EXPECT_EQ(view.BoundAttributes(0), (AttributeSet{"Author"}));
  EXPECT_EQ(view.BoundAttributes(1), (AttributeSet{"Title"}));
}

TEST(MultiTemplateViewTest, SourceAcceptsEitherForm) {
  InMemorySource source =
      InMemorySource::MakeUnsafe(BookView(), BookData());
  auto dict = std::make_shared<ValueDictionary>();
  auto query = [&](const char* attribute, const char* value) {
    return SourceQuery::MakeUnsafe(source.view(), dict,
                                   {{attribute, S(value)}});
  };
  auto by_author = source.Execute(query("Author", "ullman"));
  ASSERT_TRUE(by_author.ok());
  EXPECT_EQ(by_author->size(), 2u);
  auto by_title = source.Execute(query("Title", "db_systems"));
  ASSERT_TRUE(by_title.ok());
  EXPECT_EQ(by_title->size(), 2u);
  auto by_price = source.Execute(query("Price", "$95"));
  EXPECT_EQ(by_price.status().code(), StatusCode::kCapabilityViolation);
}

TEST(MultiTemplateViewTest, AdornedExpansion) {
  std::vector<planner::Adorned> adorned =
      planner::Adorned::FromView(BookView());
  ASSERT_EQ(adorned.size(), 2u);
  EXPECT_EQ(adorned[0].name, "book");
  EXPECT_EQ(adorned[1].name, "book");
  EXPECT_EQ(adorned[0].bound, (AttributeSet{"Author"}));
  EXPECT_EQ(adorned[1].bound, (AttributeSet{"Title"}));
  EXPECT_EQ(adorned[0].All(), adorned[1].All());
}

TEST(MultiTemplateClosureTest, QueryableThroughSecondTemplate) {
  // With only a Title binding, book is reachable via its fbf template.
  planner::FClosure closure =
      planner::ComputeFClosure({"Title"}, {BookView()});
  EXPECT_TRUE(closure.Contains("book"));
  // The closure records the view once even though two templates match
  // eventually.
  EXPECT_EQ(closure.order, (std::vector<std::string>{"book"}));
  EXPECT_TRUE(planner::ComputeFClosure({"Price"}, {BookView()})
                  .views.empty());
}

TEST(MultiTemplateClosureTest, KernelShrinksAcrossTemplates) {
  // {book} alone, no inputs: binding either Author or Title suffices, so
  // kernels are {Author} and {Title}.
  auto kernels = planner::AllKernels({}, {BookView()});
  EXPECT_EQ(kernels,
            (std::vector<AttributeSet>{{"Author"}, {"Title"}}));
}

TEST(MultiTemplateBuilderTest, RulesPerTemplate) {
  planner::Query query({{"Author", S("ullman")}}, {"Price"},
                       {planner::Connection({"book"})});
  auto program = planner::BuildProgram(query, {BookView()},
                                       planner::DomainMap());
  ASSERT_TRUE(program.ok()) << program.status();
  // 1 connection rule + (alpha + 2 domain rules) per template + 1 fact.
  EXPECT_EQ(program->size(), 1u + 3u + 3u + 1u);
  // Two alpha rules with different bodies.
  std::size_t alpha_rules = 0;
  for (const auto& rule : program->rules()) {
    if (rule.head.predicate == "book^") ++alpha_rules;
  }
  EXPECT_EQ(alpha_rules, 2u);
}

struct Bookstore {
  SourceCatalog catalog;
  std::vector<SourceView> views;
};

/// publisher(Publisher, Author) [bf] feeds authors; book answers by
/// author or title; review(Title, Stars) [bf] needs titles.
Bookstore MakeBookstore() {
  Bookstore store;
  SourceView publisher =
      SourceView::MakeUnsafe("publisher", {"Publisher", "Author"}, "bf");
  Relation publisher_data(publisher.schema());
  publisher_data.InsertUnsafe({S("ph"), S("ullman")});
  SourceView book = BookView();
  SourceView review =
      SourceView::MakeUnsafe("review", {"Title", "Stars"}, "bf");
  Relation review_data(review.schema());
  review_data.InsertUnsafe({S("db_systems"), S("5")});
  review_data.InsertUnsafe({S("automata"), S("4")});

  store.views = {publisher, book, review};
  store.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(publisher, std::move(publisher_data))));
  store.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(book, BookData())));
  store.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(review, std::move(review_data))));
  return store;
}

TEST(MultiTemplateExecTest, EndToEndThroughAuthorTemplate) {
  Bookstore store = MakeBookstore();
  planner::Query query({{"Publisher", S("ph")}}, {"Stars"},
                       {planner::Connection({"publisher", "book", "review"})});
  ASSERT_TRUE(query.Validate(store.catalog).ok());
  exec::QueryAnswerer answerer(&store.catalog, planner::DomainMap());
  auto report = answerer.Answer(query);
  ASSERT_TRUE(report.ok()) << report.status();
  auto decoded = report->exec.answer.DecodedRows();
  EXPECT_EQ(std::set<Row>(decoded.begin(), decoded.end()),
            (std::set<Row>{{S("5")}, {S("4")}}));
  auto complete = exec::CompleteAnswer(query, store.catalog);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(report->exec.answer == *complete);  // connection independent
}

TEST(MultiTemplateExecTest, SecondTemplateUnlocksReverseChain) {
  // Input is a Title: book must be entered through its fbf template; the
  // returned authors then re-enter book through bff, reaching the
  // authors' other titles (repeated access through different templates).
  // The *answer* stays constrained to Title = db_systems — the input
  // constant is substituted into the connection rule — but the trace
  // shows the reverse chain running.
  Bookstore store = MakeBookstore();
  planner::Query query({{"Title", S("db_systems")}}, {"Stars"},
                       {planner::Connection({"book", "review"})});
  ASSERT_TRUE(query.Validate(store.catalog).ok());
  exec::QueryAnswerer answerer(&store.catalog, planner::DomainMap());
  auto report = answerer.Answer(query);
  ASSERT_TRUE(report.ok()) << report.status();
  auto decoded = report->exec.answer.DecodedRows();
  EXPECT_EQ(std::set<Row>(decoded.begin(), decoded.end()),
            (std::set<Row>{{S("5")}}));
  // The fbf entry produced authors; the bff re-entry produced automata,
  // whose review was then fetched even though it cannot join the answer.
  std::set<std::string> queries;
  for (const auto& record : report->exec.log.records()) {
    queries.insert(record.RenderedQuery());
  }
  EXPECT_TRUE(queries.count("book(A, db_systems, P)")) << "fbf entry";
  EXPECT_TRUE(queries.count("book(ullman, T, P)")) << "bff re-entry";
  EXPECT_TRUE(queries.count("review(automata, S)"))
      << "reverse chain reached the author's other title";
}

TEST(MultiTemplateExecTest, BaselinePicksSatisfiableTemplate) {
  Bookstore store = MakeBookstore();
  planner::Query query({{"Title", S("db_systems")}}, {"Price"},
                       {planner::Connection({"book"})});
  exec::BaselineExecutor baseline(&store.catalog);
  auto result = baseline.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->skipped_connections.empty());
  EXPECT_EQ(result->answer.size(), 1u);  // $95 (both db_systems rows)
}

TEST(MultiTemplateFindRelTest, RelevanceWithTemplates) {
  Bookstore store = MakeBookstore();
  planner::Query query({{"Title", S("db_systems")}}, {"Stars"},
                       {planner::Connection({"book", "review"})});
  auto report = planner::FindRelevantViews(
      query, query.connections()[0], store.views);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->connection_queryable);
  // The connection is independent given a Title: book (fbf) then review.
  EXPECT_TRUE(report->independent);
  EXPECT_EQ(report->relevant_views,
            (std::set<std::string>{"book", "review"}));
}

}  // namespace
}  // namespace limcap
