#include "planner/plan_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "capability/catalog_fingerprint.h"
#include "capability/in_memory_source.h"
#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "mediator/mediator.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

namespace limcap::planner {
namespace {

using capability::CatalogFingerprint;
using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceView;
using capability::StableHash64;
using exec::ExecOptions;
using exec::OrderedFingerprint;
using exec::QueryAnswerer;
using exec::StaticAnalysisMode;
using paperdata::PaperExample;

void AddSource(SourceCatalog* catalog, const char* name,
               std::vector<std::string> attributes, const char* pattern,
               const std::vector<relational::Row>& rows = {}) {
  SourceView view =
      SourceView::MakeUnsafe(name, std::move(attributes), pattern);
  relational::Relation data(view.schema());
  for (const relational::Row& row : rows) data.InsertUnsafe(row);
  catalog->RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(view, std::move(data))));
}

QuerySignature MustSign(const Query& query, const SourceCatalog& catalog,
                        const DomainMap& domains = {},
                        const BuilderOptions& builder = {},
                        std::string_view tag = {}) {
  auto signature = MakeQuerySignature(query, catalog, domains, builder, tag);
  EXPECT_TRUE(signature.ok()) << signature.status();
  return *signature;
}

// ---------------------------------------------------------------------------
// Catalog fingerprints.

TEST(CatalogFingerprintTest, IncrementalMatchesBatchAndRebuilds) {
  SourceCatalog catalog;
  EXPECT_EQ(catalog.fingerprint(), capability::kEmptyCatalogFingerprint);
  AddSource(&catalog, "v1", {"A", "B"}, "bf");
  AddSource(&catalog, "v2", {"B", "C"}, "bf");
  AddSource(&catalog, "v3", {"C", "D"}, "ff");
  // The incrementally maintained value equals the batch recomputation.
  EXPECT_EQ(catalog.fingerprint(), CatalogFingerprint(catalog.Views()));

  // An identical catalog built independently lands on the same value.
  SourceCatalog twin;
  AddSource(&twin, "v1", {"A", "B"}, "bf");
  AddSource(&twin, "v2", {"B", "C"}, "bf");
  AddSource(&twin, "v3", {"C", "D"}, "ff");
  EXPECT_EQ(twin.fingerprint(), catalog.fingerprint());

  // Registration order matters: generated programs list rules in view
  // order.
  SourceCatalog reordered;
  AddSource(&reordered, "v2", {"B", "C"}, "bf");
  AddSource(&reordered, "v1", {"A", "B"}, "bf");
  AddSource(&reordered, "v3", {"C", "D"}, "ff");
  EXPECT_NE(reordered.fingerprint(), catalog.fingerprint());

  // A capability change (same name/schema, different adornment) moves it.
  SourceCatalog weakened;
  AddSource(&weakened, "v1", {"A", "B"}, "ff");
  AddSource(&weakened, "v2", {"B", "C"}, "bf");
  AddSource(&weakened, "v3", {"C", "D"}, "ff");
  EXPECT_NE(weakened.fingerprint(), catalog.fingerprint());

  // Deregistering the tail restores the shorter catalog's fingerprint.
  uint64_t fp_before = 0;
  {
    SourceCatalog two;
    AddSource(&two, "v1", {"A", "B"}, "bf");
    AddSource(&two, "v2", {"B", "C"}, "bf");
    fp_before = two.fingerprint();
  }
  ASSERT_TRUE(catalog.Deregister("v3").ok());
  EXPECT_EQ(catalog.fingerprint(), fp_before);
  EXPECT_EQ(catalog.fingerprint(), CatalogFingerprint(catalog.Views()));
  EXPECT_FALSE(catalog.Deregister("v3").ok());

  // Deregister from the middle shifts later slots; still equals batch.
  AddSource(&catalog, "v3", {"C", "D"}, "ff");
  ASSERT_TRUE(catalog.Deregister("v1").ok());
  EXPECT_EQ(catalog.fingerprint(), CatalogFingerprint(catalog.Views()));
  EXPECT_TRUE(catalog.Contains("v2"));
  EXPECT_TRUE(catalog.Contains("v3"));
}

// ---------------------------------------------------------------------------
// Query signatures.

TEST(QuerySignatureTest, InvariantUnderConnectionAndViewOrder) {
  PaperExample example = paperdata::MakeExample21();
  QuerySignature base = MustSign(example.query, example.catalog,
                                 example.domains);

  // Reverse the connection list and each connection's view list.
  std::vector<Connection> shuffled;
  for (auto it = example.query.connections().rbegin();
       it != example.query.connections().rend(); ++it) {
    std::vector<std::string> names = it->view_names();
    std::reverse(names.begin(), names.end());
    shuffled.emplace_back(std::move(names));
  }
  Query reordered(example.query.inputs(), example.query.outputs(),
                  std::move(shuffled));
  ASSERT_TRUE(reordered.Validate(example.catalog, example.domains).ok());
  EXPECT_EQ(MustSign(reordered, example.catalog, example.domains), base);
}

TEST(QuerySignatureTest, InvariantUnderAttributeRenaming) {
  SourceCatalog original;
  AddSource(&original, "v1", {"Song", "Cd"}, "bf");
  AddSource(&original, "v3", {"Cd", "Price"}, "bf");
  Query query({{"Song", Value::String("t1")}}, {"Price"},
              {Connection({"v1", "v3"})});

  SourceCatalog renamed;
  AddSource(&renamed, "v1", {"Track", "Disc"}, "bf");
  AddSource(&renamed, "v3", {"Disc", "Cost"}, "bf");
  Query renamed_query({{"Track", Value::String("t1")}}, {"Cost"},
                      {Connection({"v1", "v3"})});

  // Same signature (isomorphic queries), different catalog fingerprint
  // (the capability surface names different attributes) — so the combined
  // cache keys still differ, as they must: the plans bind different
  // attribute names.
  EXPECT_EQ(MustSign(query, original), MustSign(renamed_query, renamed));
  EXPECT_NE(original.fingerprint(), renamed.fingerprint());
}

TEST(QuerySignatureTest, SensitiveToAdornmentsInputsOutputsAndKnobs) {
  SourceCatalog catalog;
  AddSource(&catalog, "v1", {"Song", "Cd"}, "bf");
  AddSource(&catalog, "v3", {"Cd", "Price"}, "bf");
  Query query({{"Song", Value::String("t1")}}, {"Price"},
              {Connection({"v1", "v3"})});
  QuerySignature base = MustSign(query, catalog);

  // Distinct adornment on a referenced view: different signature.
  SourceCatalog readorned;
  AddSource(&readorned, "v1", {"Song", "Cd"}, "fb");
  AddSource(&readorned, "v3", {"Cd", "Price"}, "bf");
  EXPECT_NE(MustSign(query, readorned), base);

  // Different input value / different value kind of the same text.
  Query other_value({{"Song", Value::String("t2")}}, {"Price"},
                    {Connection({"v1", "v3"})});
  EXPECT_NE(MustSign(other_value, catalog), base);
  Query int_value({{"Song", Value::Int64(1)}}, {"Price"},
                  {Connection({"v1", "v3"})});
  Query str_value({{"Song", Value::String("1")}}, {"Price"},
                  {Connection({"v1", "v3"})});
  EXPECT_NE(MustSign(int_value, catalog), MustSign(str_value, catalog));

  // Output order is the answer schema: sensitive.
  Query two_out({{"Song", Value::String("t1")}}, {"Cd", "Price"},
                {Connection({"v1", "v3"})});
  Query two_out_swapped({{"Song", Value::String("t1")}}, {"Price", "Cd"},
                        {Connection({"v1", "v3"})});
  EXPECT_NE(MustSign(two_out, catalog), MustSign(two_out_swapped, catalog));

  // Builder knobs and the config tag are part of the key.
  BuilderOptions goals;
  goals.per_connection_goals = true;
  EXPECT_NE(MustSign(query, catalog, {}, goals), base);
  EXPECT_NE(MustSign(query, catalog, {}, {}, "prune"), base);

  // A domain-map override changes the emitted program: sensitive.
  DomainMap grouped;
  grouped.SetDomain("Cd", "disc");
  EXPECT_NE(MustSign(query, catalog, grouped), base);

  // Unknown view: signature fails like Validate does.
  Query bad({{"Song", Value::String("t1")}}, {"Price"},
            {Connection({"v1", "v9"})});
  EXPECT_FALSE(MakeQuerySignature(bad, catalog, DomainMap()).ok());
}

TEST(QuerySignatureTest, PropertyShuffledGeneratedQueriesShareSignatures) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    workload::CatalogSpec spec;
    spec.topology = workload::CatalogSpec::Topology::kRandom;
    spec.num_views = 8;
    spec.num_attributes = 6;
    spec.tuples_per_view = 5;
    spec.seed = seed;
    workload::GeneratedInstance instance = workload::GenerateInstance(spec);
    workload::QuerySpec query_spec;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    query_spec.seed = seed * 31;
    auto query = workload::GenerateQuery(instance, query_spec);
    if (!query.ok()) continue;  // no valid query of this shape exists
    QuerySignature base =
        MustSign(*query, instance.catalog, instance.domains);

    std::mt19937 rng(seed);
    for (int round = 0; round < 4; ++round) {
      std::vector<Connection> connections;
      for (const Connection& connection : query->connections()) {
        std::vector<std::string> names = connection.view_names();
        std::shuffle(names.begin(), names.end(), rng);
        connections.emplace_back(std::move(names));
      }
      std::shuffle(connections.begin(), connections.end(), rng);
      Query shuffled(query->inputs(), query->outputs(),
                     std::move(connections));
      EXPECT_EQ(MustSign(shuffled, instance.catalog, instance.domains), base)
          << "seed " << seed << " round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// The LRU cache proper.

std::shared_ptr<const CachedPlan> Entry(uint64_t catalog_fp,
                                        const std::string& name) {
  auto entry = std::make_shared<CachedPlan>();
  entry->catalog_fingerprint = catalog_fp;
  entry->signature.canonical = name;
  entry->signature.hash = StableHash64(name);
  return entry;
}

TEST(PlanCacheTest, LruEvictionIsBoundedAndFreshensOnLookup) {
  PlanCache cache(/*capacity=*/2);
  cache.Insert(Entry(1, "a"));
  cache.Insert(Entry(1, "b"));
  // Touch "a": it becomes most recently used, so inserting "c" evicts "b".
  EXPECT_NE(cache.Lookup(1, Entry(1, "a")->signature), nullptr);
  cache.Insert(Entry(1, "c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(1, Entry(1, "a")->signature), nullptr);
  EXPECT_EQ(cache.Lookup(1, Entry(1, "b")->signature), nullptr);
  EXPECT_NE(cache.Lookup(1, Entry(1, "c")->signature), nullptr);

  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);

  // Same signature under a different catalog fingerprint is a miss.
  EXPECT_EQ(cache.Lookup(2, Entry(1, "a")->signature), nullptr);

  // Re-inserting an existing key replaces without growing.
  cache.Insert(Entry(1, "c"));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, CapacityZeroDisables) {
  PlanCache cache(/*capacity=*/0);
  cache.Insert(Entry(1, "a"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1, Entry(1, "a")->signature), nullptr);
  EXPECT_EQ(cache.stats().inserts, 0u);
  // The consulted-but-disabled lookup still counts: hit + miss must equal
  // the number of Lookup calls (a reject-gated query against a disabled
  // cache used to vanish from the stats entirely).
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCacheTest, StatsSnapshotCarriesSizeAndCapacity) {
  PlanCache cache(/*capacity=*/2);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().capacity, 2u);
  cache.Insert(Entry(1, "a"));
  cache.Insert(Entry(1, "b"));
  cache.Insert(Entry(1, "c"));  // evicts "a"
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(PlanCacheTest, InvalidateDropsExactlyOneGeneration) {
  PlanCache cache(/*capacity=*/8);
  cache.Insert(Entry(1, "a"));
  cache.Insert(Entry(1, "b"));
  cache.Insert(Entry(2, "a"));
  cache.Insert(Entry(2, "c"));
  EXPECT_EQ(cache.Invalidate(1), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(1, Entry(1, "a")->signature), nullptr);
  EXPECT_NE(cache.Lookup(2, Entry(2, "a")->signature), nullptr);
  EXPECT_NE(cache.Lookup(2, Entry(2, "c")->signature), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.Invalidate(1), 0u);
}

// Named "Parallel" so the TSan CI job picks it up.
TEST(PlanCacheTest, ParallelLookupsInsertsAndInvalidationsAreSafe) {
  PlanCache cache(/*capacity=*/4);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string name = "sig" + std::to_string((t + i) % 6);
        uint64_t fp = uint64_t(i % 2) + 1;
        if (i % 7 == 0) {
          cache.Invalidate(fp);
        } else if (i % 3 == 0) {
          cache.Insert(Entry(fp, name));
        } else {
          auto hit = cache.Lookup(fp, Entry(fp, name)->signature);
          if (hit != nullptr) {
            EXPECT_EQ(hit->catalog_fingerprint, fp);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 4u);
  PlanCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Warm-path answer preservation.

PaperExample MakeExample(int index) {
  switch (index) {
    case 0:
      return paperdata::MakeExample21();
    case 1:
      return paperdata::MakeExample41();
    case 2:
      return paperdata::MakeExample51();
    default:
      return paperdata::MakeExample52();
  }
}

std::vector<std::pair<std::string, ExecOptions>> EvaluatorConfigs() {
  std::vector<std::pair<std::string, ExecOptions>> configs;
  configs.emplace_back("serial", ExecOptions{});
  ExecOptions parallel;
  parallel.mode = datalog::Evaluator::Mode::kParallelSemiNaive;
  parallel.eval_threads = 4;
  configs.emplace_back("parallel-eval", parallel);
  ExecOptions concurrent;
  concurrent.runtime.concurrent = true;
  configs.emplace_back("concurrent-fetch", concurrent);
  return configs;
}

TEST(PlanCacheTest, WarmAnswerBitIdenticalToColdOnPaperExamples) {
  for (int example_index = 0; example_index < 4; ++example_index) {
    for (const auto& [config_name, base_options] : EvaluatorConfigs()) {
      PaperExample example = MakeExample(example_index);
      QueryAnswerer answerer(&example.catalog, example.domains);
      PlanCache cache;
      ExecOptions options = base_options;
      options.plan_cache = &cache;

      auto cold = answerer.Answer(example.query, options);
      ASSERT_TRUE(cold.ok()) << cold.status();
      EXPECT_TRUE(cold->cache.attempted);
      EXPECT_FALSE(cold->cache.hit);

      auto warm = answerer.Answer(example.query, options);
      ASSERT_TRUE(warm.ok()) << warm.status();
      EXPECT_TRUE(warm->cache.hit)
          << "example " << example_index << " config " << config_name;
      EXPECT_EQ(warm->cache.key_fingerprint, cold->cache.key_fingerprint);
      EXPECT_EQ(warm->cache.catalog_fingerprint,
                cold->cache.catalog_fingerprint);
      EXPECT_EQ(OrderedFingerprint(warm->exec),
                OrderedFingerprint(cold->exec))
          << "example " << example_index << " config " << config_name;
      EXPECT_EQ(warm->exec.post_ingest_translations, 0u);
    }
  }
}

TEST(PlanCacheTest, WarmPathReplaysAnalysisVerdicts) {
  for (StaticAnalysisMode mode :
       {StaticAnalysisMode::kWarn, StaticAnalysisMode::kPrune}) {
    PaperExample example = paperdata::MakeExample21();
    QueryAnswerer answerer(&example.catalog, example.domains);
    PlanCache cache;
    ExecOptions options;
    options.static_analysis = mode;
    options.plan_cache = &cache;

    auto cold = answerer.Answer(example.query, options);
    ASSERT_TRUE(cold.ok()) << cold.status();
    ASSERT_TRUE(cold->analysis_ran);

    auto warm = answerer.Answer(example.query, options);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_TRUE(warm->cache.hit);
    ASSERT_TRUE(warm->analysis_ran);
    EXPECT_EQ(warm->analysis.diagnostics.size(),
              cold->analysis.diagnostics.size());
    EXPECT_EQ(OrderedFingerprint(warm->exec), OrderedFingerprint(cold->exec));
  }
}

TEST(PlanCacheTest, DistinctGateModesDoNotShareEntries) {
  PaperExample example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  PlanCache cache;
  ExecOptions off;
  off.plan_cache = &cache;
  ExecOptions prune;
  prune.plan_cache = &cache;
  prune.static_analysis = StaticAnalysisMode::kPrune;

  ASSERT_TRUE(answerer.Answer(example.query, off).ok());
  auto pruned = answerer.Answer(example.query, prune);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  // The kPrune answer must not have reused the kOff artifact.
  EXPECT_FALSE(pruned->cache.hit);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Mediator integration (satellite: repeated answers, bounded dictionary,
// invalidation on catalog mutation).

mediator::MediatorView CdInfoView() {
  mediator::MediatorView view;
  view.name = "cd_info";
  view.exported_attributes = {"Song", "Cd", "Price"};
  view.definitions = {Connection({"v1", "v3"}), Connection({"v1", "v4"}),
                      Connection({"v2", "v3"}), Connection({"v2", "v4"})};
  return view;
}

TEST(MediatorPlanCacheTest, RepeatedAnswersAreBitIdenticalAndBounded) {
  PaperExample example = paperdata::MakeExample21();
  mediator::Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  mediator::MediatorQuery query{
      "cd_info", {{"Song", Value::String("t1")}}, {"Price"}};

  // One session dictionary across the repeats, like a long-lived session.
  ExecOptions options;
  options.session_dict = std::make_shared<ValueDictionary>();

  auto first = mediator.Answer(query, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache.hit);
  const std::string fingerprint = OrderedFingerprint(first->exec);
  const std::size_t dict_size = options.session_dict->size();

  for (int i = 0; i < 3; ++i) {
    auto repeat = mediator.Answer(query, options);
    ASSERT_TRUE(repeat.ok()) << repeat.status();
    EXPECT_TRUE(repeat->cache.hit);
    EXPECT_EQ(OrderedFingerprint(repeat->exec), fingerprint);
    // Re-answering interns nothing new: the dictionary stays put.
    EXPECT_EQ(options.session_dict->size(), dict_size);
    EXPECT_EQ(repeat->exec.post_ingest_translations, 0u);
  }
  EXPECT_EQ(mediator.plan_cache().stats().hits, 3u);
  EXPECT_EQ(mediator.plan_cache().stats().misses, 1u);

  // Session metrics carried the cache counters along.
  EXPECT_EQ(mediator.session_metrics().Get(obs::metric::kPlanCacheHits), 3.0);
  EXPECT_EQ(mediator.session_metrics().Get(obs::metric::kPlanCacheMisses),
            1.0);
}

TEST(MediatorPlanCacheTest, CatalogMutationInvalidatesStaleEntries) {
  PaperExample example = paperdata::MakeExample21();
  mediator::Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  mediator::MediatorQuery query{
      "cd_info", {{"Song", Value::String("t1")}}, {"Price"}};

  auto cold = mediator.Answer(query, {});
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = mediator.Answer(query, {});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache.hit);

  // A source joins: the catalog fingerprint moves, so the next answer
  // recompiles, and the mediator reclaims the stale generation's entries.
  AddSource(&example.catalog, "v9", {"Cd", "Label"}, "bf");
  EXPECT_NE(example.catalog.fingerprint(), cold->cache.catalog_fingerprint);
  auto after = mediator.Answer(query, {});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->cache.hit);
  EXPECT_NE(after->cache.catalog_fingerprint,
            cold->cache.catalog_fingerprint);
  EXPECT_EQ(mediator.plan_cache().stats().invalidations, 1u);
  // The recompiled answer is still the paper's answer.
  EXPECT_EQ(after->exec.answer.size(), cold->exec.answer.size());

  // The source leaves again: the fingerprint returns to its old value,
  // and the (invalidated) old generation simply recompiles on demand.
  ASSERT_TRUE(example.catalog.Deregister("v9").ok());
  EXPECT_EQ(example.catalog.fingerprint(), cold->cache.catalog_fingerprint);
  auto back = mediator.Answer(query, {});
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_FALSE(back->cache.hit);
  EXPECT_EQ(back->exec.answer.size(), cold->exec.answer.size());
}

TEST(MediatorPlanCacheTest, SourceDepartureReclaimsCallerSuppliedCache) {
  // Regression: generation reclamation used to live in the mediator's
  // own state, so a caller-supplied cache (a ServeSession's, say) kept
  // the retired generation's entries forever. The cache itself now
  // tracks the live fingerprint, so departure → re-answer reclaims
  // entries wherever the cache came from.
  PaperExample example = paperdata::MakeExample21();
  mediator::Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  mediator::MediatorQuery query{
      "cd_info", {{"Song", Value::String("t1")}}, {"Price"}};

  PlanCache shared;
  ExecOptions options;
  options.plan_cache = &shared;

  AddSource(&example.catalog, "v9", {"Cd", "Label"}, "bf");
  auto cold = mediator.Answer(query, options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->cache.hit);
  EXPECT_EQ(shared.size(), 1u);

  // The source departs: the next answer runs under the old fingerprint,
  // and the v9-era entry is dropped from the *caller's* cache.
  ASSERT_TRUE(example.catalog.Deregister("v9").ok());
  auto after = mediator.Answer(query, options);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->cache.hit);
  EXPECT_EQ(shared.stats().invalidations, 1u);
  EXPECT_EQ(shared.size(), 1u);  // only the post-departure entry remains
  EXPECT_EQ(after->exec.answer.size(), cold->exec.answer.size());
  // The mediator's own cache was never touched.
  EXPECT_EQ(mediator.plan_cache().size(), 0u);

  // Re-answering under the stable fingerprint is a warm hit again.
  auto warm = mediator.Answer(query, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache.hit);
  EXPECT_EQ(OrderedFingerprint(warm->exec), OrderedFingerprint(after->exec));
}

TEST(PlanCacheTest, NoteCatalogGenerationDropsOnlyThePreviousGeneration) {
  PlanCache cache;
  auto entry = [](uint64_t fingerprint, const char* canonical) {
    auto plan = std::make_shared<CachedPlan>();
    plan->catalog_fingerprint = fingerprint;
    plan->signature.canonical = canonical;
    plan->signature.hash = StableHash64(canonical);
    return plan;
  };
  cache.Insert(entry(1, "q1"));
  cache.Insert(entry(2, "q2"));
  cache.Insert(entry(3, "q3"));

  // First report just records the generation.
  EXPECT_EQ(cache.NoteCatalogGeneration(1), 0u);
  // Same fingerprint again: nothing to do.
  EXPECT_EQ(cache.NoteCatalogGeneration(1), 0u);
  EXPECT_EQ(cache.size(), 3u);
  // Generation moves 1 → 2: exactly generation 1's entry is dropped;
  // fingerprint 3 (a different catalog sharing the cache) survives.
  EXPECT_EQ(cache.NoteCatalogGeneration(2), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.NoteCatalogGeneration(3), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(MediatorPlanCacheTest, CapacityZeroDisablesSessionCache) {
  PaperExample example = paperdata::MakeExample21();
  mediator::Mediator mediator(&example.catalog, example.domains);
  ASSERT_TRUE(mediator.Define(CdInfoView()).ok());
  mediator.SetPlanCacheCapacity(0);
  mediator::MediatorQuery query{
      "cd_info", {{"Song", Value::String("t1")}}, {"Price"}};
  auto first = mediator.Answer(query, {});
  ASSERT_TRUE(first.ok());
  auto second = mediator.Answer(query, {});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache.attempted);
  EXPECT_FALSE(second->cache.hit);
  EXPECT_EQ(OrderedFingerprint(second->exec),
            OrderedFingerprint(first->exec));
}

}  // namespace
}  // namespace limcap::planner
