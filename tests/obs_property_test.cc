// Property: observability is passive. Attaching a tracer and a metrics
// registry to an execution must leave the execution bit-identical —
// same answer, same source-access log (order included), same derived
// facts — under every dispatch configuration. The check runs a seeded
// random-workload sweep and compares exec::OrderedFingerprint (the
// total-order digest of an execution) between a traced and an untraced
// run of the same query, for
//
//   * the serial evaluator + serial fetch (the default),
//   * the parallel semi-naive evaluator,
//   * the concurrent fetch runtime (thread pool + in-flight caps) —
//     this configuration also runs under TSan in CI, so a tracer
//     touched off the driver thread would be caught here.

#include <gtest/gtest.h>

#include <string>

#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace limcap::obs {
namespace {

using exec::ExecOptions;
using exec::QueryAnswerer;
using workload::CatalogSpec;
using workload::GeneratedInstance;
using workload::GenerateInstance;
using workload::GenerateQuery;
using workload::QuerySpec;

enum class Config { kSerial, kParallelEval, kConcurrentFetch };

struct Scenario {
  Config config;
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const char* config = info.param.config == Config::kSerial ? "Serial"
                       : info.param.config == Config::kParallelEval
                           ? "ParallelEval"
                           : "ConcurrentFetch";
  return std::string(config) + "Seed" + std::to_string(info.param.seed);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (Config config : {Config::kSerial, Config::kParallelEval,
                        Config::kConcurrentFetch}) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      scenarios.push_back({config, seed});
    }
  }
  return scenarios;
}

ExecOptions MakeOptions(Config config) {
  ExecOptions options;
  switch (config) {
    case Config::kSerial:
      break;
    case Config::kParallelEval:
      options.mode = datalog::Evaluator::Mode::kParallelSemiNaive;
      options.eval_threads = 4;
      break;
    case Config::kConcurrentFetch:
      options.runtime.concurrent = true;
      options.runtime.max_in_flight = 8;
      options.runtime.per_source_max_in_flight = 4;
      break;
  }
  return options;
}

class ObsBitIdentityProperty : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    CatalogSpec spec;
    spec.topology = GetParam().seed % 2 == 0 ? CatalogSpec::Topology::kRandom
                                             : CatalogSpec::Topology::kChain;
    spec.seed = GetParam().seed * 6151 + 29;
    spec.num_views = 8;
    spec.num_attributes = 7;
    spec.tuples_per_view = 25;
    spec.domain_size = 12;
    instance_ = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.seed = GetParam().seed * 12289 + 11;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    auto query = GenerateQuery(instance_, query_spec);
    if (!query.ok()) GTEST_SKIP() << "no valid query for this instance";
    query_ = *query;
  }

  GeneratedInstance instance_;
  planner::Query query_;
};

TEST_P(ObsBitIdentityProperty, TraceOnEqualsTraceOff) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);

  ExecOptions plain_options = MakeOptions(GetParam().config);
  auto plain = answerer.Answer(query_, plain_options);
  ASSERT_TRUE(plain.ok()) << plain.status();

  Tracer tracer;
  MetricsRegistry metrics;
  ExecOptions traced_options = MakeOptions(GetParam().config);
  traced_options.tracer = &tracer;
  traced_options.metrics = &metrics;
  auto traced = answerer.Answer(query_, traced_options);
  ASSERT_TRUE(traced.ok()) << traced.status();

  EXPECT_EQ(exec::OrderedFingerprint(plain->exec),
            exec::OrderedFingerprint(traced->exec));
  EXPECT_FALSE(tracer.empty());

  // A *disabled* tracer is equally passive.
  Tracer disabled(/*enabled=*/false);
  ExecOptions disabled_options = MakeOptions(GetParam().config);
  disabled_options.tracer = &disabled;
  auto quiet = answerer.Answer(query_, disabled_options);
  ASSERT_TRUE(quiet.ok()) << quiet.status();
  EXPECT_EQ(exec::OrderedFingerprint(plain->exec),
            exec::OrderedFingerprint(quiet->exec));
  EXPECT_TRUE(disabled.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ObsBitIdentityProperty,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

}  // namespace
}  // namespace limcap::obs
