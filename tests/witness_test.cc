#include <gtest/gtest.h>

#include <memory>

#include "capability/in_memory_source.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/witness.h"
#include "workload/generator.h"

namespace limcap::planner {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using paperdata::MakeExample21;
using paperdata::MakeExample41;

/// Materializes a witness instance as a live catalog over exactly the
/// connection's views.
SourceCatalog Materialize(const NonIndependenceWitness& witness,
                          const std::vector<SourceView>& views) {
  SourceCatalog catalog;
  for (const SourceView& view : views) {
    auto it = witness.data.find(view.name());
    if (it == witness.data.end()) continue;
    catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, it->second)));
  }
  return catalog;
}

TEST(WitnessTest, IndependentConnectionHasNoWitness) {
  auto example = MakeExample41();
  auto witness = ConstructNonIndependenceWitness(
      example.query, example.query.connections()[0], example.views);
  EXPECT_FALSE(witness.ok());  // T1 = {v1, v3} is independent
}

TEST(WitnessTest, UnknownViewFails) {
  auto example = MakeExample41();
  EXPECT_FALSE(ConstructNonIndependenceWitness(
                   example.query, Connection({"v1", "nope"}), example.views)
                   .ok());
}

TEST(WitnessTest, Example41T2WitnessLosesTheTuple) {
  // T2 = {v2, v3} is not independent: the witness instance must have a
  // complete answer the restricted execution cannot reach.
  auto example = MakeExample41();
  const Connection& t2 = example.query.connections()[1];
  auto witness =
      ConstructNonIndependenceWitness(example.query, t2, example.views);
  ASSERT_TRUE(witness.ok()) << witness.status();
  EXPECT_FALSE(witness->unreachable_views.empty());

  std::vector<SourceView> t2_views;
  for (const auto& view : example.views) {
    if (t2.ContainsView(view.name())) t2_views.push_back(view);
  }
  SourceCatalog catalog = Materialize(*witness, t2_views);

  auto complete = exec::CompleteAnswer(witness->query, witness->data);
  ASSERT_TRUE(complete.ok()) << complete.status();
  EXPECT_EQ(complete->size(), 1u);
  EXPECT_TRUE(complete->Contains({Value::String("w_D")}));

  exec::QueryAnswerer answerer(&catalog, example.domains);
  auto obtainable = answerer.Answer(witness->query);
  ASSERT_TRUE(obtainable.ok()) << obtainable.status();
  EXPECT_TRUE(obtainable->exec.answer.empty());
}

class WitnessOnRandomConnections : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(WitnessOnRandomConnections, Theorem42Holds) {
  workload::CatalogSpec spec;
  spec.topology = workload::CatalogSpec::Topology::kRandom;
  spec.num_views = 8;
  spec.num_attributes = 7;
  spec.bound_probability = 0.6;
  spec.tuples_per_view = 5;
  spec.seed = GetParam() * 97 + 11;
  workload::GeneratedInstance instance = workload::GenerateInstance(spec);

  workload::QuerySpec query_spec;
  query_spec.num_connections = 2;
  query_spec.views_per_connection = 3;
  query_spec.seed = GetParam() * 7 + 3;
  auto query = workload::GenerateQuery(instance, query_spec);
  if (!query.ok()) GTEST_SKIP();

  bool found_dependent = false;
  for (const Connection& connection : query->connections()) {
    auto witness =
        ConstructNonIndependenceWitness(*query, connection, instance.views);
    if (!witness.ok()) continue;  // independent connection
    found_dependent = true;

    std::vector<SourceView> connection_views;
    for (const auto& view : instance.views) {
      if (connection.ContainsView(view.name())) {
        connection_views.push_back(view);
      }
    }
    SourceCatalog catalog = Materialize(*witness, connection_views);
    auto complete = exec::CompleteAnswer(witness->query, witness->data);
    ASSERT_TRUE(complete.ok());
    EXPECT_EQ(complete->size(), 1u);

    exec::QueryAnswerer answerer(&catalog, instance.domains);
    auto obtainable = answerer.Answer(witness->query);
    ASSERT_TRUE(obtainable.ok()) << obtainable.status();
    // Theorem 4.2: some complete tuple is missed — here, the only one.
    EXPECT_LT(obtainable->exec.answer.size(), complete->size())
        << connection.ToString();
  }
  if (!found_dependent) {
    GTEST_SKIP() << "all generated connections were independent";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessOnRandomConnections,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace limcap::planner
