#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/query_parser.h"

namespace limcap::planner {
namespace {

TEST(QueryParserTest, ParsesThePaperQuery) {
  auto query = ParseQuery(
      "<{Song = t1}, {Price}, {{v1, v3}, {v1, v4}, {v2, v3}, {v2, v4}}>");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->inputs().size(), 1u);
  EXPECT_EQ(query->inputs()[0].attribute, "Song");
  EXPECT_EQ(query->inputs()[0].value, Value::String("t1"));
  EXPECT_EQ(query->outputs(), (std::vector<std::string>{"Price"}));
  EXPECT_EQ(query->connections().size(), 4u);
  EXPECT_EQ(query->connections()[1].ToString(), "{v1, v4}");
}

TEST(QueryParserTest, TypedValuesAndEmptyInputs) {
  auto query = ParseQuery(
      "<{Fare = 250, Rating = 4.5, Title = \"two words\"}, {A, B},"
      " {{v1}}>");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->inputs()[0].value, Value::Int64(250));
  EXPECT_EQ(query->inputs()[1].value, Value::Double(4.5));
  EXPECT_EQ(query->inputs()[2].value, Value::String("two words"));

  auto no_inputs = ParseQuery("<{}, {A}, {{v1, v2}}>");
  ASSERT_TRUE(no_inputs.ok()) << no_inputs.status();
  EXPECT_TRUE(no_inputs->inputs().empty());
}

TEST(QueryParserTest, CommentsAndWhitespace) {
  auto query = ParseQuery(
      "% the paper's Example 4.1 query\n"
      "<{A = a0},   // selection\n"
      " {D},\n"
      " {{v1, v3}, {v2, v3}}>\n");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->connections().size(), 2u);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("{Song = t1}, {Price}, {{v1}}").ok());  // no <>
  EXPECT_FALSE(ParseQuery("<{Song t1}, {Price}, {{v1}}>").ok());  // no =
  EXPECT_FALSE(ParseQuery("<{Song = t1}, {Price}>").ok());  // 2 sections
  EXPECT_FALSE(ParseQuery("<{Song = t1}, {Price}, {v1}>").ok());  // flat
  EXPECT_FALSE(ParseQuery("<{}, {A}, {{v1}}> trailing").ok());
  auto bad = ParseQuery("<{A = }, {B}, {{v}}>");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(QueryParserTest, RoundTripsPaperExamples) {
  for (const auto& example :
       {paperdata::MakeExample21(), paperdata::MakeExample41(),
        paperdata::MakeExample51(), paperdata::MakeExample52()}) {
    auto reparsed = ParseQuery(example.query.ToString());
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status() << " for " << example.query.ToString();
    EXPECT_EQ(reparsed->ToString(), example.query.ToString());
  }
}

TEST(QueryParserTest, ParsedQueryExecutes) {
  auto example = paperdata::MakeExample21();
  auto query = ParseQuery(
      "<{Song = t1}, {Price}, {{v1, v3}, {v1, v4}, {v2, v3}, {v2, v4}}>");
  ASSERT_TRUE(query.ok());
  exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(*query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.answer.size(), 3u);
}

class RandomQueryRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryRoundTrip, ToStringParsesBack) {
  Rng rng(GetParam() * 53 + 7);
  std::vector<InputAssignment> inputs;
  int input_count = static_cast<int>(rng.Below(4));
  for (int i = 0; i < input_count; ++i) {
    Value value;
    switch (rng.Below(4)) {
      case 0:
        value = Value::Int64(rng.Range(-100, 100));
        break;
      case 1:
        value = Value::Double(double(rng.Range(0, 50)) + 0.5);
        break;
      case 2:
        value = Value::String("v" + std::to_string(rng.Below(9)));
        break;
      default:
        value = Value::String("needs quoting " + std::to_string(i));
        break;
    }
    inputs.push_back({"In" + std::to_string(i), std::move(value)});
  }
  std::vector<std::string> outputs;
  int output_count = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < output_count; ++i) {
    outputs.push_back("Out" + std::to_string(i));
  }
  std::vector<Connection> connections;
  int connection_count = 1 + static_cast<int>(rng.Below(3));
  for (int c = 0; c < connection_count; ++c) {
    std::vector<std::string> names;
    int size = 1 + static_cast<int>(rng.Below(3));
    for (int v = 0; v < size; ++v) {
      names.push_back("v" + std::to_string(c * 3 + v + 1));
    }
    connections.emplace_back(std::move(names));
  }
  Query query(std::move(inputs), std::move(outputs), std::move(connections));
  auto reparsed = ParseQuery(query.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n"
                             << query.ToString();
  EXPECT_EQ(reparsed->ToString(), query.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryRoundTrip,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace limcap::planner
