#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datalog/fact_store.h"

namespace limcap::datalog {
namespace {

Value S(const std::string& text) { return Value::String(text); }

/// Scans [0, limit) of `pred` for rows matching `key` at `columns` — the
/// trivially-correct oracle the index is checked against.
std::vector<std::size_t> ScanProbe(const FactStore& store, PredicateId pred,
                                   const std::vector<uint32_t>& columns,
                                   const IdRow& key, std::size_t limit) {
  std::vector<std::size_t> positions;
  FactSpan facts = store.Facts(pred);
  const std::size_t bound = std::min(limit, facts.size());
  for (std::size_t pos = 0; pos < bound; ++pos) {
    RowView row = facts[pos];
    bool match = true;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (row[columns[c]] != key[c]) {
        match = false;
        break;
      }
    }
    if (match) positions.push_back(pos);
  }
  return positions;
}

std::vector<std::size_t> IndexProbe(const FactStore& store, PredicateId pred,
                                    const std::vector<uint32_t>& columns,
                                    const IdRow& key, std::size_t limit) {
  std::vector<std::size_t> positions;
  store.ProbeEach(pred, columns, RowView(key), limit, [&](std::size_t pos) {
    positions.push_back(pos);
    return true;
  });
  return positions;
}

TEST(FactStoreInternTest, DeclareIdIsStableAndDense) {
  FactStore store;
  PredicateId p = *store.DeclareId("p", 2);
  PredicateId q = *store.DeclareId("q", 1);
  EXPECT_EQ(p, 0u);
  EXPECT_EQ(q, 1u);
  EXPECT_EQ(*store.DeclareId("p", 2), p);  // idempotent
  EXPECT_EQ(store.FindPredicate("p"), p);
  EXPECT_EQ(store.FindPredicate("q"), q);
  EXPECT_EQ(store.FindPredicate("r"), kNoPredicate);
  EXPECT_EQ(store.PredicateName(p), "p");
  EXPECT_EQ(store.NumPredicates(), 2u);
  EXPECT_FALSE(store.DeclareId("p", 3).ok());  // arity conflict
}

TEST(FactStoreInternTest, DuplicateDetectionSurvivesTableGrowth) {
  FactStore store;
  PredicateId pred = *store.DeclareId("e", 2);
  auto encode = [&](int a, int b) {
    return IdRow{store.dict().Intern(Value::Int64(a)),
                 store.dict().Intern(Value::Int64(b))};
  };
  // Enough rows to force several row-set rehashes.
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(*store.InsertIds(pred, RowView(encode(i, i + 1))));
  }
  EXPECT_EQ(store.Count(pred), 500u);
  // Every earlier row must still be detected as a duplicate.
  for (int i = 0; i < 500; ++i) {
    IdRow row = encode(i, i + 1);
    EXPECT_TRUE(store.Contains(pred, RowView(row))) << i;
    EXPECT_FALSE(*store.InsertIds(pred, RowView(row))) << i;
  }
  EXPECT_EQ(store.Count(pred), 500u);
}

/// Regression test for the probe-order contract: interleave inserts and
/// probes on the same column subset and check that incremental index
/// maintenance always agrees with a fresh scan — same positions, strictly
/// ascending, limit respected.
TEST(FactStoreProbeOrderTest, InterleavedInsertsAndProbesStayConsistent) {
  FactStore store;
  PredicateId pred = *store.DeclareId("edge", 2);
  const std::vector<uint32_t> cols = {0};
  store.EnsureIndex(pred, cols);

  // Keys cycle over a small set so chains grow between probes.
  std::vector<ValueId> keys;
  for (int k = 0; k < 7; ++k) {
    keys.push_back(store.dict().Intern(Value::Int64(k)));
  }
  std::size_t next_value = 100;
  for (int round = 0; round < 40; ++round) {
    // Insert a burst of rows (forcing index slot growth over the run).
    for (int j = 0; j < 11; ++j) {
      IdRow row = {keys[(round + j) % keys.size()],
                   store.dict().Intern(Value::Int64(static_cast<int>(
                       next_value++)))};
      ASSERT_TRUE(store.InsertIds(pred, RowView(row)).ok());
    }
    // Probe every key at several limits and compare to the scan oracle.
    const std::size_t count = store.Count(pred);
    for (ValueId key_id : keys) {
      IdRow key = {key_id};
      for (std::size_t limit : {std::size_t{0}, count / 2, count,
                                count + 100}) {
        std::vector<std::size_t> indexed =
            IndexProbe(store, pred, cols, key, limit);
        EXPECT_EQ(indexed, ScanProbe(store, pred, cols, key, limit));
        EXPECT_TRUE(std::is_sorted(indexed.begin(), indexed.end()));
        for (std::size_t pos : indexed) {
          EXPECT_LT(pos, std::min(limit, count));
          EXPECT_EQ(store.Row(pred, pos)[0], key_id);
        }
      }
    }
  }
}

TEST(FactStoreProbeOrderTest, IndexBuiltLateMatchesIndexBuiltEarly) {
  // Build the same relation twice: one store indexes before any insert,
  // the other only after all inserts. Probes must agree exactly.
  FactStore early;
  FactStore late;
  PredicateId pe = *early.DeclareId("r", 3);
  PredicateId pl = *late.DeclareId("r", 3);
  const std::vector<uint32_t> cols = {1, 2};
  early.EnsureIndex(pe, cols);
  for (int i = 0; i < 300; ++i) {
    IdRow erow = {early.dict().Intern(Value::Int64(i)),
                  early.dict().Intern(Value::Int64(i % 5)),
                  early.dict().Intern(Value::Int64(i % 3))};
    IdRow lrow = {late.dict().Intern(Value::Int64(i)),
                  late.dict().Intern(Value::Int64(i % 5)),
                  late.dict().Intern(Value::Int64(i % 3))};
    ASSERT_TRUE(early.InsertIds(pe, RowView(erow)).ok());
    ASSERT_TRUE(late.InsertIds(pl, RowView(lrow)).ok());
  }
  late.EnsureIndex(pl, cols);
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 3; ++b) {
      IdRow ekey = {early.dict().Intern(Value::Int64(a)),
                    early.dict().Intern(Value::Int64(b))};
      IdRow lkey = {late.dict().Intern(Value::Int64(a)),
                    late.dict().Intern(Value::Int64(b))};
      EXPECT_EQ(IndexProbe(early, pe, cols, ekey, 300),
                IndexProbe(late, pl, cols, lkey, 300));
    }
  }
}

TEST(FactStoreProbeOrderTest, UnindexedProbeFallsBackToScan) {
  FactStore store;
  PredicateId pred = *store.DeclareId("p", 2);
  ValueId a = store.dict().Intern(S("a"));
  ValueId b = store.dict().Intern(S("b"));
  ValueId c = store.dict().Intern(S("c"));
  for (ValueId second : {a, b, c, a, b}) {  // duplicates are dropped
    IdRow row = {a, second};
    ASSERT_TRUE(store.InsertIds(pred, RowView(row)).ok());
  }
  EXPECT_EQ(store.Count(pred), 3u);
  // No EnsureIndex call: ProbeEach must still answer via the linear scan.
  const std::vector<uint32_t> cols = {0};
  IdRow key = {a};
  EXPECT_EQ(IndexProbe(store, pred, cols, key, 100),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(IndexProbe(store, pred, cols, key, 2),
            (std::vector<std::size_t>{0, 1}));
}

TEST(FactStoreProbeOrderTest, EarlyExitStopsEnumeration) {
  FactStore store;
  PredicateId pred = *store.DeclareId("p", 2);
  ValueId k = store.dict().Intern(S("k"));
  for (int i = 0; i < 50; ++i) {
    IdRow row = {k, store.dict().Intern(Value::Int64(i))};
    ASSERT_TRUE(store.InsertIds(pred, RowView(row)).ok());
  }
  const std::vector<uint32_t> cols = {0};
  store.EnsureIndex(pred, cols);
  IdRow key = {k};
  std::size_t seen = 0;
  store.ProbeEach(pred, cols, RowView(key), 50, [&](std::size_t) {
    ++seen;
    return seen < 5;  // stop after five rows
  });
  EXPECT_EQ(seen, 5u);
}

TEST(FactStoreSpanTest, FactSpanViewsMatchDecodedRows) {
  FactStore store;
  ASSERT_TRUE(store.Insert("p", {S("x"), S("y")}).ok());
  ASSERT_TRUE(store.Insert("p", {S("z"), S("w")}).ok());
  PredicateId pred = store.FindPredicate("p");
  FactSpan facts = store.Facts(pred);
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(store.Decode(facts[0]), (relational::Row{S("x"), S("y")}));
  EXPECT_EQ(store.Decode(facts[1]), (relational::Row{S("z"), S("w")}));
  std::size_t rows = 0;
  for (RowView row : facts) {
    EXPECT_EQ(row.size(), 2u);
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

}  // namespace
}  // namespace limcap::datalog
