#include <gtest/gtest.h>

#include <set>

#include "analysis/binding_flow.h"
#include "capability/catalog_text.h"
#include "common/value_dictionary.h"
#include "exec/baseline_executor.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/closure.h"
#include "workload/generator.h"

namespace limcap {
namespace {

using exec::CompleteAnswer;
using exec::QueryAnswerer;
using planner::AttributeSet;
using relational::Row;
using workload::CatalogSpec;
using workload::GeneratedInstance;
using workload::GenerateInstance;
using workload::GenerateQuery;
using workload::QuerySpec;

std::set<Row> Rows(const relational::Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

struct Scenario {
  CatalogSpec::Topology topology;
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const char* topology =
      info.param.topology == CatalogSpec::Topology::kChain   ? "Chain"
      : info.param.topology == CatalogSpec::Topology::kStar ? "Star"
                                                             : "Random";
  return std::string(topology) + "Seed" + std::to_string(info.param.seed);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (auto topology :
       {CatalogSpec::Topology::kChain, CatalogSpec::Topology::kStar,
        CatalogSpec::Topology::kRandom}) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      scenarios.push_back({topology, seed});
    }
  }
  return scenarios;
}

class RandomInstanceProperties : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    CatalogSpec spec;
    spec.topology = GetParam().topology;
    spec.seed = GetParam().seed * 7919 + 13;
    spec.num_views = 8;
    spec.num_attributes = 7;
    spec.tuples_per_view = 25;
    spec.domain_size = 12;
    instance_ = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.seed = GetParam().seed * 104729 + 3;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    auto query = GenerateQuery(instance_, query_spec);
    if (!query.ok()) GTEST_SKIP() << "no valid query for this instance";
    query_ = *query;
  }

  GeneratedInstance instance_;
  planner::Query query_;
};

TEST_P(RandomInstanceProperties, ObtainableSubsetOfComplete) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto report = answerer.Answer(query_);
  ASSERT_TRUE(report.ok()) << report.status();
  auto complete = CompleteAnswer(query_, instance_.full_data);
  ASSERT_TRUE(complete.ok()) << complete.status();
  for (const Row& row : report->exec.answer.DecodedRows()) {
    EXPECT_TRUE(complete->Contains(row))
        << "obtainable row " << relational::RowToString(row)
        << " missing from complete answer; query " << query_.ToString();
  }
}

TEST_P(RandomInstanceProperties, OptimizedProgramPreservesAnswer) {
  // Theorem 5.1 + Section 6: Π(Q, V_r) with useless rules removed gives
  // the same answer as the brute-force Π(Q, V), never with more source
  // queries.
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto optimized = answerer.Answer(query_);
  auto unoptimized = answerer.AnswerUnoptimized(query_);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  ASSERT_TRUE(unoptimized.ok()) << unoptimized.status();
  EXPECT_EQ(Rows(optimized->exec.answer), Rows(unoptimized->exec.answer))
      << query_.ToString();
  EXPECT_LE(optimized->exec.log.total_queries(),
            unoptimized->exec.log.total_queries());
}

TEST_P(RandomInstanceProperties, BaselineSubsetOfFramework) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  exec::BaselineExecutor baseline(&instance_.catalog);
  auto framework = answerer.Answer(query_);
  auto per_join = baseline.Execute(query_);
  ASSERT_TRUE(framework.ok()) << framework.status();
  ASSERT_TRUE(per_join.ok()) << per_join.status();
  for (const Row& row : per_join->answer.DecodedRows()) {
    EXPECT_TRUE(framework->exec.answer.Contains(row))
        << relational::RowToString(row) << "; query " << query_.ToString();
  }
}

TEST_P(RandomInstanceProperties, IndependentConnectionsComplete) {
  // Theorem 4.1: when every connection is independent, the obtainable
  // answer equals the complete answer and matches the baseline.
  bool all_independent = true;
  for (const planner::Connection& connection : query_.connections()) {
    std::vector<capability::SourceView> views;
    for (const std::string& name : connection.view_names()) {
      for (const auto& view : instance_.views) {
        if (view.name() == name) views.push_back(view);
      }
    }
    if (!planner::IsIndependent(query_.InputAttributes(), views)) {
      all_independent = false;
    }
  }
  if (!all_independent) GTEST_SKIP() << "query has dependent connections";

  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto framework = answerer.Answer(query_);
  auto complete = CompleteAnswer(query_, instance_.full_data);
  exec::BaselineExecutor baseline(&instance_.catalog);
  auto per_join = baseline.Execute(query_);
  ASSERT_TRUE(framework.ok());
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(per_join.ok());
  EXPECT_EQ(Rows(framework->exec.answer), Rows(*complete))
      << query_.ToString();
  EXPECT_EQ(Rows(per_join->answer), Rows(*complete)) << query_.ToString();
}

TEST_P(RandomInstanceProperties, NaiveAndSemiNaiveExecutionsAgree) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  exec::ExecOptions naive;
  naive.mode = datalog::Evaluator::Mode::kNaive;
  auto a = answerer.Answer(query_, naive);
  auto b = answerer.Answer(query_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Rows(a->exec.answer), Rows(b->exec.answer));
}

TEST_P(RandomInstanceProperties, FetchStrategiesAgree) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  exec::ExecOptions eager;
  eager.strategy = exec::FetchStrategy::kEager;
  auto a = answerer.Answer(query_, eager);
  auto b = answerer.Answer(query_);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Rows(a->exec.answer), Rows(b->exec.answer));
  EXPECT_EQ(a->exec.log.total_queries(), b->exec.log.total_queries());
}

TEST_P(RandomInstanceProperties, BudgetedAnswersAreMonotone) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  std::size_t previous = 0;
  std::size_t previous_budget = 0;
  for (std::size_t budget : {0u, 2u, 8u, 32u, 10000u}) {
    exec::ExecOptions options;
    options.max_source_queries = budget;
    auto report = answerer.Answer(query_, options);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->exec.answer.size(), previous)
        << "budget " << budget << " vs " << previous_budget;
    previous = report->exec.answer.size();
    previous_budget = budget;
  }
}

TEST_P(RandomInstanceProperties, FClosureOrderIsExecutable) {
  // The f-closure's order is an executable sequence: every view's
  // requirements are satisfied by the inputs plus all earlier views.
  planner::FClosure closure = planner::ComputeFClosure(
      query_.InputAttributes(), instance_.views);
  AttributeSet bound = query_.InputAttributes();
  for (const std::string& name : closure.order) {
    const capability::SourceView* view =
        instance_.catalog.FindView(name).value();
    EXPECT_TRUE(view->RequirementsSatisfiedBy(bound)) << name;
    AttributeSet attrs = view->Attributes();
    bound.insert(attrs.begin(), attrs.end());
  }
  EXPECT_EQ(bound, closure.bound_attributes);
  // Views outside the closure must not be satisfiable even at the end.
  for (const auto& view : instance_.views) {
    if (!closure.Contains(view.name())) {
      EXPECT_FALSE(view.RequirementsSatisfiedBy(bound)) << view.name();
    }
  }
}

TEST_P(RandomInstanceProperties, CatalogTextRoundTrip) {
  auto text = capability::CatalogToText(instance_.catalog);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = capability::ParseCatalog(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->views.size(), instance_.views.size());
  // The reparsed catalog answers the query identically.
  QueryAnswerer original(&instance_.catalog, instance_.domains);
  QueryAnswerer round_tripped(&reparsed->catalog, instance_.domains);
  auto a = original.Answer(query_);
  auto b = round_tripped.Answer(query_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->exec.answer == b->exec.answer);
}

TEST_P(RandomInstanceProperties, NoDuplicateSourceQueries) {
  // The evaluator memoizes issued queries; an identical source query must
  // never be sent twice, and every query must satisfy the source's
  // templates (a violation would surface as an execution error, but we
  // assert it structurally too).
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto report = answerer.Answer(query_);
  ASSERT_TRUE(report.ok()) << report.status();
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& record : report->exec.log.records()) {
    EXPECT_TRUE(seen.emplace(record.source, record.RenderedQuery()).second)
        << "duplicate query " << record.RenderedQuery();
    const capability::SourceView* view =
        instance_.catalog.FindView(record.source).value();
    capability::AttributeSet bound;
    for (const auto& [attribute, value] : record.query.DecodedBindings(*view)) {
      bound.insert(attribute);
    }
    EXPECT_TRUE(view->RequirementsSatisfiedBy(bound))
        << record.RenderedQuery() << " violates " << view->ToString();
  }
}

TEST_P(RandomInstanceProperties, MinAnswersIsRespected) {
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto full = answerer.Answer(query_);
  ASSERT_TRUE(full.ok());
  if (full->exec.answer.empty()) GTEST_SKIP() << "no answers to target";
  exec::ExecOptions options;
  options.min_answers = 1;
  auto targeted = answerer.Answer(query_, options);
  ASSERT_TRUE(targeted.ok());
  EXPECT_GE(targeted->exec.answer.size(), 1u);
  EXPECT_LE(targeted->exec.log.total_queries(),
            full->exec.log.total_queries());
  for (const Row& row : targeted->exec.answer.DecodedRows()) {
    EXPECT_TRUE(full->exec.answer.Contains(row));
  }
}

TEST_P(RandomInstanceProperties, KernelDefinitionHolds) {
  for (const planner::Connection& connection : query_.connections()) {
    std::vector<capability::SourceView> views;
    for (const std::string& name : connection.view_names()) {
      for (const auto& view : instance_.views) {
        if (view.name() == name) views.push_back(view);
      }
    }
    AttributeSet inputs = query_.InputAttributes();
    AttributeSet kernel = planner::ComputeKernel(inputs, views);
    AttributeSet start = kernel;
    start.insert(inputs.begin(), inputs.end());
    // f-closure(K ∪ I, T) = T.
    EXPECT_EQ(planner::ComputeFClosure(start, views).views.size(),
              views.size());
    // Minimality.
    for (const std::string& attribute : kernel) {
      AttributeSet smaller = start;
      smaller.erase(attribute);
      EXPECT_LT(planner::ComputeFClosure(smaller, views).views.size(),
                views.size());
    }
    // An independent connection iff empty kernel.
    EXPECT_EQ(kernel.empty(), planner::IsIndependent(inputs, views));
  }
}

TEST_P(RandomInstanceProperties, AllKernelsShareBClosure) {
  // Lemma 5.3 on generated instances.
  for (const planner::Connection& connection : query_.connections()) {
    std::vector<capability::SourceView> views;
    for (const std::string& name : connection.view_names()) {
      for (const auto& view : instance_.views) {
        if (view.name() == name) views.push_back(view);
      }
    }
    planner::FClosure queryable = planner::ComputeFClosure(
        query_.InputAttributes(), instance_.views);
    // Lemma 5.3 speaks about queryable connections.
    bool connection_queryable = true;
    for (const std::string& name : connection.view_names()) {
      if (!queryable.Contains(name)) connection_queryable = false;
    }
    if (!connection_queryable) continue;
    std::vector<capability::SourceView> queryable_views;
    for (const auto& view : instance_.views) {
      if (queryable.Contains(view.name())) queryable_views.push_back(view);
    }
    auto kernels = planner::AllKernels(query_.InputAttributes(), views);
    if (kernels.size() < 2) continue;
    auto first = planner::ComputeBClosure(kernels[0], queryable_views);
    for (std::size_t i = 1; i < kernels.size(); ++i) {
      EXPECT_EQ(planner::ComputeBClosure(kernels[i], queryable_views), first)
          << connection.ToString();
    }
  }
}

TEST_P(RandomInstanceProperties, BindingFlowCertificatesVerify) {
  // Every verdict of the binding-flow pass carries a machine-checkable
  // certificate, and the independent checker accepts all of them.
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto report = answerer.AnswerUnoptimized(query_);
  ASSERT_TRUE(report.ok()) << report.status();
  analysis::BindingFlowResult flow = analysis::AnalyzeBindingFlow(
      report->plan.full_program, instance_.catalog.Views(),
      instance_.domains);
  for (const analysis::ChannelVerdict& verdict : flow.channels) {
    Status status = analysis::VerifyCertificate(
        report->plan.full_program, instance_.catalog.Views(),
        instance_.domains, analysis::BindingFlowOptions(), verdict);
    EXPECT_TRUE(status.ok())
        << verdict.view << "[" << verdict.template_index
        << "]: " << status.message() << "; query " << query_.ToString();
  }
}

TEST_P(RandomInstanceProperties, IrrelevantChannelsAreEvaluationInert) {
  // Soundness of the prune verdict: a channel the binding-flow pass
  // calls irrelevant contributes nothing — dropping it (alone, or all of
  // them together) leaves the answer bit-for-bit unchanged.
  QueryAnswerer answerer(&instance_.catalog, instance_.domains);
  auto baseline = answerer.AnswerUnoptimized(query_);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  analysis::BindingFlowResult flow = analysis::AnalyzeBindingFlow(
      baseline->plan.full_program, instance_.catalog.Views(),
      instance_.domains);
  const auto pruned_channels = flow.PrunedChannels();

  exec::ExecOptions all;
  all.pruned_channels = pruned_channels;
  auto all_pruned = answerer.AnswerUnoptimized(query_, all);
  ASSERT_TRUE(all_pruned.ok()) << all_pruned.status();
  EXPECT_EQ(Rows(all_pruned->exec.answer), Rows(baseline->exec.answer))
      << query_.ToString();
  EXPECT_LE(all_pruned->exec.log.total_queries(),
            baseline->exec.log.total_queries());

  std::size_t checked = 0;
  for (const auto& channel : pruned_channels) {
    if (++checked > 4) break;  // keep the sweep bounded
    exec::ExecOptions one;
    one.pruned_channels = {channel};
    auto report = answerer.AnswerUnoptimized(query_, one);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(Rows(report->exec.answer), Rows(baseline->exec.answer))
        << "pruning " << channel.first << "[" << channel.second
        << "] changed the answer; query " << query_.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomInstanceProperties,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

TEST(ValueDictionaryProperty, RoundTripAllKinds) {
  // Every Value kind survives Intern → Get unchanged, interning is
  // idempotent, and Lookup finds exactly the interned ids.
  ValueDictionary dict;
  std::vector<Value> values = {
      Value::Null(),          Value::Int64(0),
      Value::Int64(-7),       Value::Int64(1LL << 40),
      Value::Double(0.0),     Value::Double(-2.5),
      Value::Double(1e300),   Value::String(""),
      Value::String("faust"), Value::String("a longer string value"),
  };
  std::vector<ValueId> ids;
  for (const Value& value : values) ids.push_back(dict.Intern(value));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(dict.Get(ids[i]), values[i]) << values[i].ToString();
    EXPECT_EQ(dict.Get(ids[i]).kind(), values[i].kind());
    EXPECT_EQ(dict.Intern(values[i]), ids[i]) << "re-intern changed the id";
    ValueId found = 0;
    ASSERT_TRUE(dict.Lookup(values[i], &found));
    EXPECT_EQ(found, ids[i]);
  }
  // Distinct values get distinct ids.
  std::set<ValueId> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), ids.size());
}

TEST(ValueDictionaryProperty, TextuallyEqualValuesInternDistinctly) {
  // Int64(7), Double(7) and String("7") all render as "7" but are
  // different values: the dictionary must never conflate them.
  ValueDictionary dict;
  ValueId as_int = dict.Intern(Value::Int64(7));
  ValueId as_double = dict.Intern(Value::Double(7));
  ValueId as_string = dict.Intern(Value::String("7"));
  EXPECT_NE(as_int, as_double);
  EXPECT_NE(as_int, as_string);
  EXPECT_NE(as_double, as_string);
  EXPECT_EQ(dict.Get(as_int).kind(), Value::Kind::kInt64);
  EXPECT_EQ(dict.Get(as_double).kind(), Value::Kind::kDouble);
  EXPECT_EQ(dict.Get(as_string).kind(), Value::Kind::kString);
  // Null is its own value, distinct from the empty string.
  EXPECT_NE(dict.Intern(Value::Null()), dict.Intern(Value::String("")));
}

}  // namespace
}  // namespace limcap
