// ServeSession and FetchGovernor tests. Every suite name contains
// "Serve" on purpose: the TSan CI job selects these suites by regex, so
// the bit-identity property and the admission/drain paths run under the
// race detector on every push.

#include "mediator/serve_session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "mediator/mediator.h"
#include "paperdata/paper_examples.h"
#include "runtime/fetch_governor.h"
#include "workload/generator.h"

namespace limcap::mediator {
namespace {

using exec::ExecOptions;
using exec::OrderedFingerprint;
using exec::QueryAnswerer;
using paperdata::PaperExample;
using runtime::FetchGovernor;
using workload::GenerateMixedWorkload;
using workload::MixedWorkload;
using workload::MixedWorkloadSpec;

/// The three execution configurations the isolation contract must hold
/// under: everything serial, parallel Datalog evaluation, and concurrent
/// source fetching.
struct Config {
  const char* name;
  ExecOptions options;
};

std::vector<Config> Configs() {
  Config serial{"serial", {}};
  Config parallel_eval{"parallel_eval", {}};
  parallel_eval.options.mode = datalog::Evaluator::Mode::kParallelSemiNaive;
  parallel_eval.options.eval_threads = 4;
  Config concurrent_fetch{"concurrent_fetch", {}};
  concurrent_fetch.options.runtime.concurrent = true;
  return {serial, parallel_eval, concurrent_fetch};
}

double CounterValue(const obs::MetricsRegistry& registry,
                    std::string_view name) {
  auto it = registry.counters().find(name);
  return it == registry.counters().end() ? 0.0 : it->second;
}

/// Answers `query` alone — fresh answerer, no governor, no shared cache —
/// and returns its fingerprint.
std::string SoloFingerprint(const MixedWorkload& workload,
                            const planner::Query& query,
                            const ExecOptions& options) {
  QueryAnswerer answerer(&workload.catalog, workload.domains);
  auto report = answerer.Answer(query, options);
  if (!report.ok()) return "error: " + report.status().ToString();
  return OrderedFingerprint(report->exec);
}

// The tentpole property: N queries answered concurrently on a shared
// ServeSession are each bit-identical (OrderedFingerprint) to the same
// query answered alone on an idle system — under every execution config
// and across seeds. Sharing the plan cache and the fetch governor must
// change throughput only, never answers.
TEST(ServeBitIdentityTest, ConcurrentAnswersMatchSoloAcrossConfigs) {
  for (const uint64_t seed : {3ull, 11ull}) {
    MixedWorkloadSpec spec;
    spec.seed = seed;
    spec.num_requests = 12;
    auto workload = GenerateMixedWorkload(spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    Mediator mediator(&workload->catalog, workload->domains);

    for (const Config& config : Configs()) {
      std::vector<std::string> expected;
      expected.reserve(workload->requests.size());
      for (const workload::MixedRequest& request : workload->requests) {
        expected.push_back(
            SoloFingerprint(*workload, request.query, config.options));
      }

      ServeOptions serve_options;
      serve_options.workers = 4;
      serve_options.exec = config.options;
      ServeSession session(&mediator, serve_options);

      std::vector<std::string> actual(workload->requests.size());
      std::mutex mutex;
      std::condition_variable all_done;
      std::size_t done = 0;
      for (std::size_t i = 0; i < workload->requests.size(); ++i) {
        ServeRequest request;
        request.query = workload->requests[i].query;
        Status admitted = session.Submit(
            std::move(request), [&, i](ServeResponse response) {
              actual[i] =
                  response.report.ok()
                      ? OrderedFingerprint(response.report->exec)
                      : "error: " + response.report.status().ToString();
              std::lock_guard<std::mutex> lock(mutex);
              ++done;
              all_done.notify_all();
            });
        ASSERT_TRUE(admitted.ok()) << admitted.ToString();
      }
      {
        std::unique_lock<std::mutex> lock(mutex);
        all_done.wait(lock,
                      [&] { return done == workload->requests.size(); });
      }
      session.Shutdown();

      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i])
            << "config " << config.name << ", seed " << seed
            << ", request " << i << " ("
            << MixedRequestClassName(workload->requests[i].query_class)
            << ")";
      }
    }
  }
}

TEST(ServeAdmissionTest, LoadShedsWithDistinctCodeWhenQueueFull) {
  PaperExample example = paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ServeOptions options;
  options.workers = 1;
  options.max_queue = 1;
  ServeSession session(&mediator, options);

  constexpr std::size_t kSubmissions = 32;
  std::atomic<std::size_t> answered{0};
  std::size_t shed = 0;
  for (std::size_t i = 0; i < kSubmissions; ++i) {
    ServeRequest request;
    request.query = example.query;
    Status admitted = session.Submit(
        std::move(request), [&](ServeResponse response) {
          EXPECT_TRUE(response.report.ok()) << response.report.status();
          ++answered;
        });
    if (!admitted.ok()) {
      EXPECT_EQ(admitted.code(), StatusCode::kLoadShed) << admitted;
      ++shed;
    }
  }
  session.Shutdown();

  // A 1-worker, 1-slot server cannot swallow 32 instant submissions:
  // some must shed, the rest must all be answered, and the books must
  // balance exactly.
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(answered.load() + shed, kSubmissions);
  const ServeSession::Stats stats = session.stats();
  EXPECT_EQ(stats.rejected, shed);
  EXPECT_EQ(stats.accepted, answered.load());
  EXPECT_EQ(stats.completed, answered.load());
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServeShutdownTest, GracefulDrainCompletesAcceptedThenShedsNew) {
  PaperExample example = paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ServeOptions options;
  options.workers = 2;
  ServeSession session(&mediator, options);

  constexpr std::size_t kSubmissions = 8;
  std::atomic<std::size_t> answered{0};
  for (std::size_t i = 0; i < kSubmissions; ++i) {
    ServeRequest request;
    request.query = example.query;
    ASSERT_TRUE(session
                    .Submit(std::move(request),
                            [&](ServeResponse response) {
                              EXPECT_TRUE(response.report.ok())
                                  << response.report.status();
                              ++answered;
                            })
                    .ok());
  }
  // Shutdown while requests are queued and in flight: the drain must
  // deliver every accepted response before returning.
  session.Shutdown();
  EXPECT_EQ(answered.load(), kSubmissions);
  EXPECT_TRUE(session.draining());

  // Admission after shutdown is refused with the load-shed code.
  ServeRequest late;
  late.query = example.query;
  Status refused = session.Submit(std::move(late), [](ServeResponse) {
    FAIL() << "a refused request must never get a callback";
  });
  EXPECT_EQ(refused.code(), StatusCode::kLoadShed) << refused;

  const ServeSession::Stats stats = session.stats();
  EXPECT_EQ(stats.accepted, kSubmissions);
  EXPECT_EQ(stats.completed, kSubmissions);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeDeadlineTest, RequestExpiredInQueueFailsWithoutExecuting) {
  PaperExample example = paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ServeOptions options;
  options.workers = 1;
  ServeSession session(&mediator, options);

  // The first request occupies the single worker; the ones behind it
  // carry a deadline far below any real queue wait.
  ServeRequest first;
  first.query = example.query;
  std::atomic<bool> first_ok{false};
  ASSERT_TRUE(session
                  .Submit(std::move(first),
                          [&](ServeResponse response) {
                            first_ok = response.report.ok();
                          })
                  .ok());
  constexpr std::size_t kExpiring = 4;
  std::atomic<std::size_t> expired{0};
  for (std::size_t i = 0; i < kExpiring; ++i) {
    ServeRequest request;
    request.query = example.query;
    request.deadline_ms = 0.01;
    ASSERT_TRUE(
        session
            .Submit(std::move(request),
                    [&](ServeResponse response) {
                      EXPECT_FALSE(response.report.ok());
                      EXPECT_EQ(response.report.status().code(),
                                StatusCode::kDeadlineExceeded)
                          << response.report.status();
                      ++expired;
                    })
            .ok());
  }
  session.Shutdown();
  EXPECT_TRUE(first_ok.load());
  EXPECT_EQ(expired.load(), kExpiring);
  const ServeSession::Stats stats = session.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, kExpiring);
}

TEST(ServeMetricsTest, ServerRegistryMergesPerQueryCountersOnce) {
  PaperExample example = paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ServeSession session(&mediator, {});

  // One solo answer's counter values, for comparison.
  QueryAnswerer answerer(&example.catalog, example.domains);
  obs::MetricsRegistry solo;
  ExecOptions solo_options;
  solo_options.metrics = &solo;
  ASSERT_TRUE(answerer.Answer(example.query, solo_options).ok());

  constexpr std::size_t kQueries = 3;
  for (std::size_t i = 0; i < kQueries; ++i) {
    ServeRequest request;
    request.query = example.query;
    ServeResponse response = session.Answer(std::move(request));
    ASSERT_TRUE(response.report.ok()) << response.report.status();
  }
  session.Shutdown();

  const obs::MetricsRegistry merged = session.server_metrics();
  // Execution counters aggregate to exactly N times one query's worth —
  // merged once per query, no double counting. (Planning counters do not
  // scale linearly here: answers 2..N hit the shared plan cache.)
  EXPECT_EQ(CounterValue(merged, "exec.source_queries"),
            kQueries * CounterValue(solo, "exec.source_queries"));
  EXPECT_EQ(CounterValue(merged, "answer.rows"),
            kQueries * CounterValue(solo, "answer.rows"));
  // The admission metrics are server-side only.
  EXPECT_EQ(CounterValue(merged, obs::metric::kServeAccepted), kQueries);
  EXPECT_EQ(CounterValue(merged, obs::metric::kServeCompleted), kQueries);
  EXPECT_EQ(CounterValue(merged, obs::metric::kServeRejected), 0);
}

TEST(ServeTraceTest, PerRequestTracerCarriesServeRequestSpan) {
  PaperExample example = paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  ServeOptions options;
  options.trace_requests = true;
  ServeSession session(&mediator, options);

  ServeRequest request;
  request.query = example.query;
  ServeResponse response = session.Answer(std::move(request));
  ASSERT_TRUE(response.report.ok()) << response.report.status();
  ASSERT_NE(response.trace, nullptr);
  bool saw_request_span = false;
  bool saw_nested_answer = false;
  for (const obs::Span& span : response.trace->spans()) {
    if (span.name == "serve.request") saw_request_span = true;
    if (span.name == "answer") saw_nested_answer = true;
  }
  EXPECT_TRUE(saw_request_span);
  EXPECT_TRUE(saw_nested_answer);
}

// ---------------------------------------------------------------------------
// FetchGovernor semantics (deterministic unit coverage; the concurrent
// integration runs through the bit-identity property above).

relational::Relation OneRowRelation() {
  relational::Relation relation(
      relational::Schema::MakeUnsafe({"A"}));
  relation.InsertUnsafe({Value::String("x")});
  return relation;
}

TEST(ServeGovernorTest, FollowersShareTheLeadersOutcomeInFlightOnly) {
  FetchGovernor governor;
  FetchGovernor::Ticket leader = governor.Begin("v1\x1f0=sx");
  EXPECT_TRUE(leader.leader);
  FetchGovernor::Ticket follower = governor.Begin("v1\x1f0=sx");
  EXPECT_FALSE(follower.leader);
  governor.Complete("v1\x1f0=sx", leader, OneRowRelation());
  auto shared = FetchGovernor::Wait(follower);
  ASSERT_TRUE(shared.ok()) << shared.status();
  EXPECT_EQ(shared->size(), 1u);
  EXPECT_EQ(governor.stats().cross_query_coalesced, 1u);

  // The key is retired at Complete — this is in-flight sharing, not a
  // result cache: the next Begin leads again.
  FetchGovernor::Ticket next = governor.Begin("v1\x1f0=sx");
  EXPECT_TRUE(next.leader);
  FetchGovernor::Ticket late = governor.Begin("v1\x1f0=sx");
  governor.Complete("v1\x1f0=sx", next, Status::Unavailable("down"));
  auto failed = FetchGovernor::Wait(late);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
}

TEST(ServeGovernorTest, DisabledCoalescingMakesEveryoneALeader) {
  FetchGovernor::Options options;
  options.cross_query_coalesce = false;
  FetchGovernor governor(options);
  FetchGovernor::Ticket a = governor.Begin("k");
  FetchGovernor::Ticket b = governor.Begin("k");
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_EQ(governor.stats().cross_query_coalesced, 0u);
  governor.Complete("k", a, OneRowRelation());
  governor.Complete("k", b, OneRowRelation());
}

TEST(ServeGovernorTest, GlobalInFlightCapBlocksUntilRelease) {
  FetchGovernor::Options options;
  options.max_in_flight = 1;
  FetchGovernor governor(options);
  governor.Acquire("s1");
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    governor.Acquire("s2");
    acquired = true;
    governor.Release("s2");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());  // the cap held the second caller
  governor.Release("s1");
  blocked.join();
  EXPECT_TRUE(acquired.load());
  const FetchGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.acquired, 2u);
  EXPECT_GE(stats.waited, 1u);
  EXPECT_EQ(stats.peak_in_flight, 1u);
}

TEST(ServeGovernorTest, PerSourceCapLeavesOtherSourcesUnblocked) {
  FetchGovernor::Options options;
  options.max_in_flight = 8;
  options.per_source_max_in_flight = 1;
  FetchGovernor governor(options);
  governor.Acquire("s");
  // A different source is admitted immediately under the per-source cap.
  governor.Acquire("t");
  governor.Release("t");
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    governor.Acquire("s");
    acquired = true;
    governor.Release("s");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  governor.Release("s");
  blocked.join();
  EXPECT_TRUE(acquired.load());
}

}  // namespace
}  // namespace limcap::mediator
