// Capture/replay round-trip property: record a live run's source
// traffic with replay::TraceRecorder, serialize it through the `.lcap`
// artifact codec, rebuild the catalog as ReplaySources, re-execute
// offline, and the replayed OrderedFingerprint must equal the recorded
// one bit-for-bit — with every source call served from the recording
// (zero live fetches by construction: the rebuilt catalog holds only
// ReplaySources), zero replay misses, and zero post-ingest
// translations. Exercised on all four paper examples and on seeded
// mixed/generated workloads, fault-free and fault-injected (retries,
// degraded partial answers), serial and concurrent dispatch.
//
// The golden test pins `limcap_explain --replay`'s rendered report for
// a captured Example 2.1 run. Regenerate with
//   LIMCAP_REGEN_GOLDEN=1 build/tests/replay_test \
//       --gtest_filter=ReplayGoldenTest.Example21RenderedReport

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "capability/catalog_fingerprint.h"
#include "capability/in_memory_source.h"
#include "exec/fingerprint.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "replay/replay.h"
#include "replay/replay_artifact.h"
#include "replay/trace_recorder.h"
#include "runtime/fault_injection.h"
#include "workload/generator.h"

#ifndef LIMCAP_GOLDEN_DIR
#error "LIMCAP_GOLDEN_DIR must be defined by the build"
#endif

namespace limcap::replay {
namespace {

using capability::InMemorySource;
using capability::SourceCatalog;
using capability::SourceView;
using capability::StableHash64;
using runtime::FaultInjectingSource;
using runtime::FaultSpec;

/// One live run, recorded and serialized. Returns the artifact bytes;
/// the live report comes back through `live` for side-by-side asserts.
Result<std::string> RecordRun(const SourceCatalog& catalog,
                              const planner::DomainMap& domains,
                              const planner::Query& query,
                              exec::ExecOptions options,
                              exec::AnswerReport* live) {
  TraceRecorder recorder;
  options.runtime.recorder = &recorder;
  ReplayManifest manifest =
      MakeReplayManifest(query, catalog, domains, options);
  exec::QueryAnswerer answerer(&catalog, domains);
  LIMCAP_ASSIGN_OR_RETURN(exec::AnswerReport report,
                          answerer.Answer(query, options));
  StampExecution(report.exec, &manifest);
  if (live != nullptr) *live = std::move(report);
  return recorder.EncodeArtifactBytes(std::move(manifest));
}

/// The full property: record, serialize, decode, replay, and assert
/// bit-identity plus the zero-live-calls / zero-miss / zero-translation
/// invariants.
void ExpectRoundTrip(const SourceCatalog& catalog,
                     const planner::DomainMap& domains,
                     const planner::Query& query,
                     exec::ExecOptions options = {}) {
  exec::AnswerReport live;
  Result<std::string> bytes =
      RecordRun(catalog, domains, query, options, &live);
  ASSERT_TRUE(bytes.ok()) << bytes.status();

  Result<ReplayArtifact> artifact = DecodeArtifact(*bytes);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->manifest.recorded_fingerprint,
            StableHash64(exec::OrderedFingerprint(live.exec)));

  Result<ReplayRunReport> replayed = ReplayArtifactData(*artifact);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->fingerprint_match)
      << "recorded " << artifact->manifest.recorded_fingerprint
      << " != replayed " << replayed->replayed_fingerprint << "\n"
      << replayed->rendered;
  EXPECT_EQ(replayed->replay_misses, 0u);
  EXPECT_EQ(replayed->answer.exec.post_ingest_translations, 0u);
  // Every source in the rebuilt catalog is a ReplaySource, so each of
  // the replayed run's fetches was served from the recording — zero
  // live source calls, by construction and by count.
  EXPECT_EQ(replayed->replay_calls,
            static_cast<std::size_t>(
                replayed->answer.exec.fetch_report.total_attempts));
  // The replay reproduces the degraded/complete shape, not just the
  // final rows.
  EXPECT_EQ(replayed->answer.exec.fetch_report.degraded(),
            live.exec.fetch_report.degraded());
  EXPECT_EQ(replayed->answer.exec.rounds, live.exec.rounds);
}

// ---------------------------------------------------------------------------
// Paper examples
// ---------------------------------------------------------------------------

void ExpectPaperRoundTrip(paperdata::PaperExample example) {
  ExpectRoundTrip(example.catalog, example.domains, example.query);
}

TEST(ReplayRoundTripTest, PaperExample21) {
  ExpectPaperRoundTrip(paperdata::MakeExample21());
}
TEST(ReplayRoundTripTest, PaperExample41) {
  ExpectPaperRoundTrip(paperdata::MakeExample41());
}
TEST(ReplayRoundTripTest, PaperExample51) {
  ExpectPaperRoundTrip(paperdata::MakeExample51());
}
TEST(ReplayRoundTripTest, PaperExample52) {
  ExpectPaperRoundTrip(paperdata::MakeExample52());
}

// ---------------------------------------------------------------------------
// Seeded mixed workload — the serve daemon's scenario
// ---------------------------------------------------------------------------

TEST(ReplayRoundTripTest, MixedWorkloadTwelveSeededQueries) {
  workload::MixedWorkloadSpec spec;
  spec.seed = 7;
  spec.num_requests = 12;
  Result<workload::MixedWorkload> workload =
      workload::GenerateMixedWorkload(spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  for (const workload::MixedRequest& request : workload->requests) {
    SCOPED_TRACE(request.query.ToString());
    ExpectRoundTrip(workload->catalog, workload->domains, request.query);
  }
}

// ---------------------------------------------------------------------------
// Fault-injected runs: retries, timeouts, and degraded answers
// ---------------------------------------------------------------------------

/// Rebuilds `instance`'s catalog with every source wrapped in a
/// FaultInjectingSource configured by `spec`.
SourceCatalog WrapAll(const workload::GeneratedInstance& instance,
                      const FaultSpec& spec) {
  SourceCatalog catalog;
  for (const SourceView& view : instance.views) {
    auto inner = std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
        view, instance.full_data.at(view.name())));
    catalog.RegisterUnsafe(
        std::make_unique<FaultInjectingSource>(std::move(inner), spec));
  }
  return catalog;
}

workload::GeneratedInstance ChainInstance(uint64_t seed) {
  workload::CatalogSpec spec;
  spec.topology = workload::CatalogSpec::Topology::kChain;
  spec.seed = seed;
  spec.num_views = 6;
  spec.tuples_per_view = 25;
  spec.domain_size = 10;
  return workload::GenerateInstance(spec);
}

Result<planner::Query> SourceExercisingQuery(
    const workload::GeneratedInstance& instance) {
  exec::QueryAnswerer probe(&instance.catalog, instance.domains);
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    workload::QuerySpec query_spec;
    query_spec.seed = seed;
    auto candidate = workload::GenerateQuery(instance, query_spec);
    if (!candidate.ok()) continue;
    auto run = probe.Answer(*candidate);
    if (!run.ok() || run->exec.log.total_queries() == 0) continue;
    return candidate;
  }
  return Status::NotFound("no source-exercising query found");
}

TEST(ReplayRoundTripTest, FailThenRecoverWithRetriesReplays) {
  workload::GeneratedInstance instance = ChainInstance(11);
  Result<planner::Query> query = SourceExercisingQuery(instance);
  ASSERT_TRUE(query.ok()) << query.status();

  FaultSpec faults;
  faults.fail_first_per_query = 2;
  SourceCatalog flaky = WrapAll(instance, faults);

  exec::ExecOptions options;
  options.continue_on_source_error = true;
  options.runtime.retry.max_attempts = 3;
  ExpectRoundTrip(flaky, instance.domains, *query, options);
}

TEST(ReplayRoundTripTest, PermanentFaultsYieldDegradedReplayedAnswer) {
  workload::GeneratedInstance instance = ChainInstance(13);
  Result<planner::Query> query = SourceExercisingQuery(instance);
  ASSERT_TRUE(query.ok()) << query.status();

  // Every call fails, forever: the live run degrades; the replay must
  // re-raise every recorded fault and degrade identically.
  FaultSpec faults;
  faults.fail_first_calls = 1u << 20;
  SourceCatalog dead = WrapAll(instance, faults);

  exec::ExecOptions options;
  options.continue_on_source_error = true;

  exec::AnswerReport live;
  Result<std::string> bytes =
      RecordRun(dead, instance.domains, *query, options, &live);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  ASSERT_TRUE(live.exec.fetch_report.degraded());

  Result<ReplayArtifact> artifact = DecodeArtifact(*bytes);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_TRUE(artifact->manifest.degraded);
  Result<ReplayRunReport> replayed = ReplayArtifactData(*artifact);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->fingerprint_match) << replayed->rendered;
  EXPECT_EQ(replayed->replay_misses, 0u);
  EXPECT_GT(replayed->replayed_faults, 0u);
  EXPECT_TRUE(replayed->answer.exec.fetch_report.degraded());
}

TEST(ReplayRoundTripTest, ConcurrentDispatchReplays) {
  workload::GeneratedInstance instance = ChainInstance(17);
  Result<planner::Query> query = SourceExercisingQuery(instance);
  ASSERT_TRUE(query.ok()) << query.status();

  FaultSpec faults;
  faults.fail_first_per_query = 1;
  faults.latency_spike_rate = 0.3;
  faults.latency_spike_ms = 40;
  faults.seed = 5;
  SourceCatalog flaky = WrapAll(instance, faults);

  exec::ExecOptions options;
  options.continue_on_source_error = true;
  options.runtime.concurrent = true;
  options.runtime.max_in_flight = 4;
  options.runtime.retry.max_attempts = 2;
  ExpectRoundTrip(flaky, instance.domains, *query, options);
}

// ---------------------------------------------------------------------------
// Miss semantics: a divergence is a finding, not a fallback
// ---------------------------------------------------------------------------

TEST(ReplayRoundTripTest, MissingRecordedCallFailsLoudly) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  exec::AnswerReport live;
  Result<std::string> bytes = RecordRun(example.catalog, example.domains,
                                        example.query, {}, &live);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ReplayArtifact> artifact = DecodeArtifact(*bytes);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  ASSERT_FALSE(artifact->calls.empty());

  // Drop the recorded traffic: the replayed planner's first source
  // query has no recorded answer. The replay must fail with the miss
  // diagnostic, not serve an empty answer.
  artifact->calls.clear();
  Result<ReplayRunReport> replayed = ReplayArtifactData(*artifact);
  ASSERT_FALSE(replayed.ok());
  EXPECT_NE(replayed.status().message().find("replay miss"),
            std::string::npos)
      << replayed.status();
}

// ---------------------------------------------------------------------------
// Artifact codec
// ---------------------------------------------------------------------------

TEST(ReplayArtifactTest, ValueCodecIsExact) {
  const std::vector<Value> values = {
      Value(),
      Value::Int64(0),
      Value::Int64(-9223372036854775807LL - 1),
      Value::Int64(9223372036854775807LL),
      Value::Double(0.1),
      Value::Double(-1.5e-300),
      Value::Double(12345678901234567.0),
      Value::String(""),
      Value::String("plain"),
      Value::String("with \"quotes\" and\nnewline\tand \x1f unit sep"),
  };
  for (const Value& value : values) {
    Result<Value> round = ValueFromJson(ValueToJson(value));
    ASSERT_TRUE(round.ok()) << round.status();
    EXPECT_EQ(*round, value) << value.ToString();
  }
}

TEST(ReplayArtifactTest, VerifyManifestDetectsCorruption) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  Result<std::string> bytes = RecordRun(example.catalog, example.domains,
                                        example.query, {}, nullptr);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  ASSERT_TRUE(VerifyManifest(*bytes).ok());

  // Bad magic.
  std::string bad_magic = *bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(VerifyManifest(bad_magic).ok());

  // Unknown version.
  std::string bad_version = *bytes;
  bad_version[7] = static_cast<char>(99);
  EXPECT_FALSE(VerifyManifest(bad_version).ok());

  // A flipped byte in the body breaks the body hash.
  std::string bad_body = *bytes;
  bad_body[bad_body.size() - 2] ^= 0x20;
  EXPECT_FALSE(VerifyManifest(bad_body).ok());

  // Truncation loses body lines.
  const std::string truncated = bytes->substr(0, bytes->size() - 10);
  EXPECT_FALSE(VerifyManifest(truncated).ok());

  // Garbage is rejected before any parse.
  EXPECT_FALSE(VerifyManifest("not an artifact").ok());
  EXPECT_FALSE(VerifyManifest("").ok());
}

TEST(ReplayArtifactTest, FileRoundTrip) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  TraceRecorder recorder;
  exec::ExecOptions options;
  options.runtime.recorder = &recorder;
  ReplayManifest manifest = MakeReplayManifest(
      example.query, example.catalog, example.domains, options);
  exec::QueryAnswerer answerer(&example.catalog, example.domains);
  Result<exec::AnswerReport> live = answerer.Answer(example.query, options);
  ASSERT_TRUE(live.ok()) << live.status();
  StampExecution(live->exec, &manifest);

  const std::string path =
      testing::TempDir() + "/replay_file_round_trip.lcap";
  ASSERT_TRUE(recorder.WriteArtifact(path, manifest).ok());
  Result<ReplayRunReport> replayed = ReplayFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->fingerprint_match);
  EXPECT_EQ(replayed->replay_misses, 0u);
  std::remove(path.c_str());
}

TEST(ReplayArtifactTest, CatalogFingerprintMismatchIsRejected) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  Result<std::string> bytes = RecordRun(example.catalog, example.domains,
                                        example.query, {}, nullptr);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ReplayArtifact> artifact = DecodeArtifact(*bytes);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  artifact->manifest.catalog_fingerprint ^= 1;
  Result<ReplayBundle> bundle = LoadBundle(*artifact);
  ASSERT_FALSE(bundle.ok());
  EXPECT_NE(bundle.status().message().find("inconsistent"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden: the --replay report
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Adaptive dispatch: recording an adaptive run captures only the
// dispatched calls, and the replay re-derives the same skips, hedges
// and ordering from the manifest's adaptive options.
// ---------------------------------------------------------------------------

TEST(ReplayRoundTripTest, AdaptiveDispatchReplays) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  exec::ExecOptions options;
  options.runtime.adaptive.enabled = true;
  ExpectRoundTrip(example.catalog, example.domains, example.query, options);
}

TEST(ReplayRoundTripTest, AdaptiveFaultInjectedRunReplays) {
  workload::GeneratedInstance instance = ChainInstance(11);
  Result<planner::Query> query = SourceExercisingQuery(instance);
  ASSERT_TRUE(query.ok()) << query.status();

  FaultSpec faults;
  faults.fail_first_per_query = 1;
  SourceCatalog flaky = WrapAll(instance, faults);

  exec::ExecOptions options;
  options.continue_on_source_error = true;
  options.runtime.retry.max_attempts = 3;
  options.runtime.adaptive.enabled = true;
  ExpectRoundTrip(flaky, instance.domains, *query, options);
}

// ---------------------------------------------------------------------------
// Committed-corpus regression gate: small `.lcap` artifacts checked in
// under tests/corpus/. Each must (a) still replay bit-identically with
// today's code, and (b) match a fresh live recording of the same
// scenario — so any behavior drift in planning, scheduling or adaptive
// dispatch fails here before it ships. Regenerate intentionally with
//   LIMCAP_REGEN_GOLDEN=1 build/tests/replay_test \
//       --gtest_filter='ReplayCorpusTest.*'
// ---------------------------------------------------------------------------

#ifndef LIMCAP_CORPUS_DIR
#error "LIMCAP_CORPUS_DIR must be defined by the build"
#endif

void ExpectCorpusGate(const std::string& file,
                      const std::function<Result<std::string>()>& record) {
  const std::string path = std::string(LIMCAP_CORPUS_DIR) + "/" + file;
  if (std::getenv("LIMCAP_REGEN_GOLDEN") != nullptr) {
    Result<std::string> bytes = record();
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << *bytes;
    GTEST_SKIP() << "regenerated " << path;
  }
  // The committed artifact still replays faithfully...
  Result<ReplayRunReport> replayed = ReplayFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->fingerprint_match) << replayed->rendered;
  EXPECT_EQ(replayed->replay_misses, 0u);
  // ...and today's code still produces that exact run live.
  Result<std::string> bytes = record();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ReplayArtifact> live = DecodeArtifact(*bytes);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live->manifest.recorded_fingerprint,
            replayed->bundle.manifest.recorded_fingerprint)
      << file << ": live execution diverged from the committed corpus; "
      << "regenerate with LIMCAP_REGEN_GOLDEN=1 if the change is intended";
}

TEST(ReplayCorpusTest, Example21Serial) {
  ExpectCorpusGate("example21.lcap", [] {
    paperdata::PaperExample example = paperdata::MakeExample21();
    return RecordRun(example.catalog, example.domains, example.query, {},
                     nullptr);
  });
}

TEST(ReplayCorpusTest, Example41ConcurrentFetch) {
  ExpectCorpusGate("example41_concurrent.lcap", [] {
    paperdata::PaperExample example = paperdata::MakeExample41();
    exec::ExecOptions options;
    options.runtime.concurrent = true;
    options.runtime.max_in_flight = 8;
    options.runtime.per_source_max_in_flight = 8;
    return RecordRun(example.catalog, example.domains, example.query,
                     options, nullptr);
  });
}

TEST(ReplayCorpusTest, Example21Degraded) {
  ExpectCorpusGate("example21_degraded.lcap", [] {
    paperdata::PaperExample example = paperdata::MakeExample21();
    SourceCatalog flaky;
    for (const SourceView& view : example.views) {
      auto* source = dynamic_cast<InMemorySource*>(
          example.catalog.Find(view.name()).value());
      auto copy = std::make_unique<InMemorySource>(
          InMemorySource::MakeUnsafe(view, source->data()));
      if (view.name() == "v4") {
        FaultSpec spec;
        spec.fail_first_calls = 1u << 20;  // v4 down for the whole run
        flaky.RegisterUnsafe(std::make_unique<FaultInjectingSource>(
            std::move(copy), spec));
      } else {
        flaky.RegisterUnsafe(std::move(copy));
      }
    }
    exec::ExecOptions options;
    options.continue_on_source_error = true;
    return RecordRun(flaky, example.domains, example.query, options,
                     nullptr);
  });
}

TEST(ReplayCorpusTest, Example21Adaptive) {
  ExpectCorpusGate("example21_adaptive.lcap", [] {
    paperdata::PaperExample example = paperdata::MakeExample21();
    exec::ExecOptions options;
    options.runtime.adaptive.enabled = true;
    return RecordRun(example.catalog, example.domains, example.query,
                     options, nullptr);
  });
}

TEST(ReplayGoldenTest, Example21RenderedReport) {
  paperdata::PaperExample example = paperdata::MakeExample21();
  Result<std::string> bytes = RecordRun(example.catalog, example.domains,
                                        example.query, {}, nullptr);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ReplayArtifact> artifact = DecodeArtifact(*bytes);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  Result<ReplayRunReport> replayed = ReplayArtifactData(*artifact);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_TRUE(replayed->fingerprint_match);

  const std::string golden_path =
      std::string(LIMCAP_GOLDEN_DIR) + "/replay_example21.out";
  if (std::getenv("LIMCAP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    out << replayed->rendered;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "cannot read " << golden_path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(replayed->rendered, golden.str())
      << "regenerate with LIMCAP_REGEN_GOLDEN=1 (see file header)";
}

}  // namespace
}  // namespace limcap::replay
