// Parser robustness: random byte soup and randomly mutated valid inputs
// must never crash any of the three text front ends — they either parse
// or return a clean error status.

#include <gtest/gtest.h>

#include <string>

#include "capability/catalog_text.h"
#include "common/rng.h"
#include "datalog/parser.h"
#include "planner/query_parser.h"

namespace limcap {
namespace {

std::string RandomBytes(Rng* rng, std::size_t length) {
  // Printable-ish ASCII plus the structural characters the grammars use.
  static const char kAlphabet[] =
      "abcXYZ019 _$^(){}<>[],=.:-|\"\\%/\n\t";
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->Below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

std::string Mutate(std::string text, Rng* rng) {
  int edits = 1 + static_cast<int>(rng->Below(4));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    std::size_t pos = rng->Below(text.size());
    switch (rng->Below(3)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, "(){}<>,=."[rng->Below(9)]);
        break;
      default:
        text[pos] = static_cast<char>('!' + rng->Below(90));
        break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam() * 2654435761u + 99);
  for (int i = 0; i < 50; ++i) {
    std::string soup = RandomBytes(&rng, 1 + rng.Below(120));
    auto p1 = datalog::ParseProgram(soup);
    auto p2 = capability::ParseCatalog(soup);
    auto p3 = planner::ParseQuery(soup);
    // Reaching here without crashing is the assertion; statuses must be
    // either OK or a structured error, never empty messages on failure.
    if (!p1.ok()) EXPECT_FALSE(p1.status().message().empty());
    if (!p2.ok()) EXPECT_FALSE(p2.status().message().empty());
    if (!p3.ok()) EXPECT_FALSE(p3.status().message().empty());
  }
}

TEST_P(ParserFuzz, MutatedValidInputsNeverCrash) {
  Rng rng(GetParam() * 40503 + 7);
  const std::string datalog_seed =
      "ans(P) :- v1^(t1, C), v3^(C, A, P).\nsong(t1).\n";
  const std::string catalog_seed =
      "source v1(Song, Cd) [bf] { (t1, c1) (t2, c3) }\n";
  const std::string query_seed =
      "<{Song = t1}, {Price}, {{v1, v3}, {v2, v4}}>";
  for (int i = 0; i < 60; ++i) {
    (void)datalog::ParseProgram(Mutate(datalog_seed, &rng));
    (void)capability::ParseCatalog(Mutate(catalog_seed, &rng));
    (void)planner::ParseQuery(Mutate(query_seed, &rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace limcap
