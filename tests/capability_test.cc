#include <gtest/gtest.h>

#include <memory>

#include "capability/access_log.h"
#include "capability/binding_pattern.h"
#include "capability/caching_source.h"
#include "capability/in_memory_source.h"
#include "capability/source_catalog.h"
#include "capability/source_view.h"

namespace limcap::capability {
namespace {

Value S(const char* text) { return Value::String(text); }

relational::Relation CdData() {
  relational::Relation data(
      relational::Schema::MakeUnsafe({"Cd", "Artist", "Price"}));
  data.InsertUnsafe({S("c1"), S("a1"), S("$15")});
  data.InsertUnsafe({S("c3"), S("a3"), S("$14")});
  return data;
}

TEST(BindingPatternTest, ParseAndPrint) {
  auto pattern = BindingPattern::Parse("bff");
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->arity(), 3u);
  EXPECT_TRUE(pattern->IsBound(0));
  EXPECT_TRUE(pattern->IsFree(1));
  EXPECT_EQ(pattern->ToString(), "bff");
  EXPECT_EQ(pattern->BoundPositions(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(pattern->FreePositions(), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(pattern->bound_count(), 1u);
}

TEST(BindingPatternTest, ParseRejectsBadChars) {
  EXPECT_FALSE(BindingPattern::Parse("bxf").ok());
  EXPECT_TRUE(BindingPattern::Parse("").ok());
}

TEST(BindingPatternTest, AllFree) {
  BindingPattern pattern = BindingPattern::AllFree(3);
  EXPECT_EQ(pattern.ToString(), "fff");
  EXPECT_TRUE(pattern.BoundPositions().empty());
}

TEST(SourceViewTest, MakeChecksArity) {
  auto bad = SourceView::Make("v1", relational::Schema::MakeUnsafe({"A"}),
                              *BindingPattern::Parse("bf"));
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(SourceView::Make("", relational::Schema::MakeUnsafe({"A"}),
                                *BindingPattern::Parse("b"))
                   .ok());
}

TEST(SourceViewTest, AttributeSets) {
  SourceView view =
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff");
  EXPECT_EQ(view.BoundAttributes(), (AttributeSet{"Cd"}));
  EXPECT_EQ(view.FreeAttributes(), (AttributeSet{"Artist", "Price"}));
  EXPECT_EQ(view.Attributes(), (AttributeSet{"Artist", "Cd", "Price"}));
  EXPECT_EQ(view.ToString(), "v3(Cd, Artist, Price) [bff]");
}

TEST(SourceViewTest, RequirementsSatisfiedBy) {
  SourceView view = SourceView::MakeUnsafe("v4", {"Cd", "Artist"}, "fb");
  EXPECT_TRUE(view.RequirementsSatisfiedBy({"Artist"}));
  EXPECT_TRUE(view.RequirementsSatisfiedBy({"Artist", "Cd", "X"}));
  EXPECT_FALSE(view.RequirementsSatisfiedBy({"Cd"}));
  EXPECT_FALSE(view.RequirementsSatisfiedBy({}));
}

TEST(SourceViewTest, FormatQuery) {
  SourceView view =
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff");
  EXPECT_EQ(view.FormatQuery({{"Cd", S("c1")}}), "v3(c1, A, P)");
  EXPECT_EQ(view.FormatQuery({}), "v3(C, A, P)");
}

TEST(InMemorySourceTest, EnforcesBindingPattern) {
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
      CdData());
  // Missing the must-bind attribute.
  auto denied = source.Execute(SourceQuery{{{"Artist", S("a1")}}});
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kCapabilityViolation);
  // Unknown attribute.
  auto unknown = source.Execute(SourceQuery{{{"Xyz", S("a")}}});
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // Satisfying query returns matching tuples.
  auto ok = source.Execute(SourceQuery{{{"Cd", S("c1")}}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
  EXPECT_TRUE(ok->Contains({S("c1"), S("a1"), S("$15")}));
}

TEST(InMemorySourceTest, OverBindingIsAllowed) {
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
      CdData());
  auto result = source.Execute(
      SourceQuery{{{"Cd", S("c1")}, {"Artist", S("a9")}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(InMemorySourceTest, AllFreeSourceReturnsEverything) {
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "fff"),
      CdData());
  auto result = source.Execute(SourceQuery{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(InMemorySourceTest, MakeRejectsSchemaMismatch) {
  auto bad = InMemorySource::Make(
      SourceView::MakeUnsafe("v1", {"A", "B"}, "bf"),
      relational::Relation(relational::Schema::MakeUnsafe({"A"})));
  EXPECT_FALSE(bad.ok());
}

TEST(SourceCatalogTest, RegisterAndFind) {
  SourceCatalog catalog;
  catalog.RegisterUnsafe(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
          CdData())));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_TRUE(catalog.Contains("v3"));
  EXPECT_FALSE(catalog.Contains("v9"));
  ASSERT_TRUE(catalog.Find("v3").ok());
  EXPECT_FALSE(catalog.Find("v9").ok());
  EXPECT_EQ(catalog.ViewNames(), (std::vector<std::string>{"v3"}));
  EXPECT_EQ(catalog.AllAttributes(),
            (AttributeSet{"Artist", "Cd", "Price"}));
}

TEST(SourceCatalogTest, RejectsDuplicateNames) {
  SourceCatalog catalog;
  auto make = [] {
    return std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
        SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
        CdData()));
  };
  ASSERT_TRUE(catalog.Register(make()).ok());
  EXPECT_EQ(catalog.Register(make()).code(), StatusCode::kAlreadyExists);
}

TEST(CachingSourceTest, MemoizesByBindings) {
  CachingSource source(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
          CdData())));
  ASSERT_TRUE(source.Execute(SourceQuery{{{"Cd", S("c1")}}}).ok());
  ASSERT_TRUE(source.Execute(SourceQuery{{{"Cd", S("c1")}}}).ok());
  ASSERT_TRUE(source.Execute(SourceQuery{{{"Cd", S("c3")}}}).ok());
  EXPECT_EQ(source.hits(), 1u);
  EXPECT_EQ(source.misses(), 2u);
  EXPECT_EQ(source.ObservedTuples().size(), 2u);
}

TEST(CachingSourceTest, DoesNotCacheErrors) {
  CachingSource source(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
          CdData())));
  EXPECT_FALSE(source.Execute(SourceQuery{}).ok());
  EXPECT_EQ(source.misses(), 0u);
}

TEST(AccessLogTest, CountersAndTrace) {
  AccessLog log;
  AccessRecord r1;
  r1.source = "v1";
  r1.rendered_query = "v1(t1, C)";
  r1.tuples_returned = 1;
  r1.new_tuples = 1;
  r1.returned_rendered = {"<t1, c1>"};
  r1.new_bindings = {"Cd = c1"};
  log.Record(r1);
  AccessRecord r2;
  r2.source = "v3";
  r2.rendered_query = "v3(c9, A, P)";
  r2.tuples_returned = 0;
  log.Record(r2);
  AccessRecord r3 = r1;
  log.Record(r3);

  EXPECT_EQ(log.total_queries(), 3u);
  EXPECT_EQ(log.QueriesTo("v1"), 2u);
  EXPECT_EQ(log.QueriesTo("v3"), 1u);
  EXPECT_EQ(log.productive_queries(), 2u);
  EXPECT_EQ(log.total_tuples_returned(), 2u);
  auto counts = log.PerSourceCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "v1");
  EXPECT_EQ(counts[0].second, 2u);

  std::string full = log.ToTable(/*productive_only=*/false);
  std::string productive = log.ToTable(/*productive_only=*/true);
  EXPECT_NE(full.find("v3(c9, A, P)"), std::string::npos);
  EXPECT_EQ(productive.find("v3(c9, A, P)"), std::string::npos);
  EXPECT_NE(productive.find("Cd = c1"), std::string::npos);

  log.Clear();
  EXPECT_EQ(log.total_queries(), 0u);
}

}  // namespace
}  // namespace limcap::capability
