#include <gtest/gtest.h>

#include <memory>

#include "capability/access_log.h"
#include "capability/binding_pattern.h"
#include "capability/caching_source.h"
#include "capability/in_memory_source.h"
#include "capability/source_catalog.h"
#include "capability/source_view.h"

namespace limcap::capability {
namespace {

Value S(const char* text) { return Value::String(text); }

/// Builds a session-encoded query against `source`'s view; aborts on bad
/// attribute names (tests for rejection call SourceQuery::Make directly).
SourceQuery Q(const Source& source, const ValueDictionaryPtr& dict,
              std::vector<std::pair<std::string, Value>> bindings) {
  return SourceQuery::MakeUnsafe(source.view(), dict, std::move(bindings));
}

relational::Relation CdData() {
  relational::Relation data(
      relational::Schema::MakeUnsafe({"Cd", "Artist", "Price"}));
  data.InsertUnsafe({S("c1"), S("a1"), S("$15")});
  data.InsertUnsafe({S("c3"), S("a3"), S("$14")});
  return data;
}

TEST(BindingPatternTest, ParseAndPrint) {
  auto pattern = BindingPattern::Parse("bff");
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->arity(), 3u);
  EXPECT_TRUE(pattern->IsBound(0));
  EXPECT_TRUE(pattern->IsFree(1));
  EXPECT_EQ(pattern->ToString(), "bff");
  EXPECT_EQ(pattern->BoundPositions(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(pattern->FreePositions(), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(pattern->bound_count(), 1u);
}

TEST(BindingPatternTest, ParseRejectsBadChars) {
  EXPECT_FALSE(BindingPattern::Parse("bxf").ok());
  EXPECT_TRUE(BindingPattern::Parse("").ok());
}

TEST(BindingPatternTest, AllFree) {
  BindingPattern pattern = BindingPattern::AllFree(3);
  EXPECT_EQ(pattern.ToString(), "fff");
  EXPECT_TRUE(pattern.BoundPositions().empty());
}

TEST(SourceViewTest, MakeChecksArity) {
  auto bad = SourceView::Make("v1", relational::Schema::MakeUnsafe({"A"}),
                              *BindingPattern::Parse("bf"));
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(SourceView::Make("", relational::Schema::MakeUnsafe({"A"}),
                                *BindingPattern::Parse("b"))
                   .ok());
}

TEST(SourceViewTest, AttributeSets) {
  SourceView view =
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff");
  EXPECT_EQ(view.BoundAttributes(), (AttributeSet{"Cd"}));
  EXPECT_EQ(view.FreeAttributes(), (AttributeSet{"Artist", "Price"}));
  EXPECT_EQ(view.Attributes(), (AttributeSet{"Artist", "Cd", "Price"}));
  EXPECT_EQ(view.ToString(), "v3(Cd, Artist, Price) [bff]");
}

TEST(SourceViewTest, RequirementsSatisfiedBy) {
  SourceView view = SourceView::MakeUnsafe("v4", {"Cd", "Artist"}, "fb");
  EXPECT_TRUE(view.RequirementsSatisfiedBy({"Artist"}));
  EXPECT_TRUE(view.RequirementsSatisfiedBy({"Artist", "Cd", "X"}));
  EXPECT_FALSE(view.RequirementsSatisfiedBy({"Cd"}));
  EXPECT_FALSE(view.RequirementsSatisfiedBy({}));
}

TEST(SourceViewTest, FormatQuery) {
  SourceView view =
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff");
  EXPECT_EQ(view.FormatQuery({{"Cd", S("c1")}}), "v3(c1, A, P)");
  EXPECT_EQ(view.FormatQuery({}), "v3(C, A, P)");
}

TEST(SourceQueryTest, MakeCanonicalizesAndValidates) {
  SourceView view =
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff");
  auto dict = std::make_shared<ValueDictionary>();
  // Supply order does not matter: positions come out ascending.
  auto a = SourceQuery::MakeUnsafe(view, dict,
                                   {{"Artist", S("a1")}, {"Cd", S("c1")}});
  auto b = SourceQuery::MakeUnsafe(view, dict,
                                   {{"Cd", S("c1")}, {"Artist", S("a1")}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.positions, (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(a.BindsPosition(0));
  EXPECT_FALSE(a.BindsPosition(2));
  EXPECT_EQ(a.Render(view), "v3(c1, a1, P)");
  // Unknown and duplicate attributes are rejected at construction.
  EXPECT_EQ(SourceQuery::Make(view, dict, {{"Xyz", S("a")}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SourceQuery::Make(view, dict, {{"Cd", S("c1")}, {"Cd", S("c2")}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(InMemorySourceTest, EnforcesBindingPattern) {
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
      CdData());
  auto dict = std::make_shared<ValueDictionary>();
  // Missing the must-bind attribute.
  auto denied = source.Execute(Q(source, dict, {{"Artist", S("a1")}}));
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kCapabilityViolation);
  // Satisfying query returns matching tuples, encoded against the
  // caller's dictionary.
  auto ok = source.Execute(Q(source, dict, {{"Cd", S("c1")}}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
  EXPECT_EQ(ok->dict_ptr(), dict);
  EXPECT_TRUE(ok->Contains({S("c1"), S("a1"), S("$15")}));
}

TEST(InMemorySourceTest, OverBindingIsAllowed) {
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
      CdData());
  auto dict = std::make_shared<ValueDictionary>();
  auto result = source.Execute(
      Q(source, dict, {{"Cd", S("c1")}, {"Artist", S("a9")}}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(InMemorySourceTest, AllFreeSourceReturnsEverything) {
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "fff"),
      CdData());
  auto result = source.Execute(Q(source, std::make_shared<ValueDictionary>(), {}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(InMemorySourceTest, SharedDictionaryAnswersWithoutTranslation) {
  auto dict = std::make_shared<ValueDictionary>();
  relational::Relation data(
      relational::Schema::MakeUnsafe({"Cd", "Artist", "Price"}), dict);
  data.InsertUnsafe({S("c1"), S("a1"), S("$15")});
  InMemorySource source = InMemorySource::MakeUnsafe(
      SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
      std::move(data));
  SourceQuery query = Q(source, dict, {{"Cd", S("c1")}});
  const uint64_t before = dict->translation_count();
  auto result = source.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  // Catalog data already on the session dictionary: pure id flow.
  EXPECT_EQ(dict->translation_count(), before);
}

TEST(InMemorySourceTest, MakeRejectsSchemaMismatch) {
  auto bad = InMemorySource::Make(
      SourceView::MakeUnsafe("v1", {"A", "B"}, "bf"),
      relational::Relation(relational::Schema::MakeUnsafe({"A"})));
  EXPECT_FALSE(bad.ok());
}

TEST(SourceCatalogTest, RegisterAndFind) {
  SourceCatalog catalog;
  catalog.RegisterUnsafe(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
          CdData())));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_TRUE(catalog.Contains("v3"));
  EXPECT_FALSE(catalog.Contains("v9"));
  ASSERT_TRUE(catalog.Find("v3").ok());
  EXPECT_FALSE(catalog.Find("v9").ok());
  EXPECT_EQ(catalog.ViewNames(), (std::vector<std::string>{"v3"}));
  EXPECT_EQ(catalog.AllAttributes(),
            (AttributeSet{"Artist", "Cd", "Price"}));
}

TEST(SourceCatalogTest, RejectsDuplicateNames) {
  SourceCatalog catalog;
  auto make = [] {
    return std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
        SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
        CdData()));
  };
  ASSERT_TRUE(catalog.Register(make()).ok());
  EXPECT_EQ(catalog.Register(make()).code(), StatusCode::kAlreadyExists);
}

TEST(CachingSourceTest, MemoizesByBindings) {
  CachingSource source(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
          CdData())));
  auto dict = std::make_shared<ValueDictionary>();
  ASSERT_TRUE(source.Execute(Q(source, dict, {{"Cd", S("c1")}})).ok());
  ASSERT_TRUE(source.Execute(Q(source, dict, {{"Cd", S("c1")}})).ok());
  ASSERT_TRUE(source.Execute(Q(source, dict, {{"Cd", S("c3")}})).ok());
  EXPECT_EQ(source.hits(), 1u);
  EXPECT_EQ(source.misses(), 2u);
  EXPECT_EQ(source.ObservedTuples().size(), 2u);
}

// Regression: the cache key must canonicalize away both the order the
// bindings were supplied in and the session dictionary the query was
// encoded with — the same logical query always hits.
TEST(CachingSourceTest, HitInvariantToBindingOrderAndSession) {
  CachingSource source(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v5", {"Cd", "Artist", "Price"}, "bbf"),
          CdData())));
  auto session1 = std::make_shared<ValueDictionary>();
  // Prime ids in an adversarial order so the two sessions assign
  // different ids to the same values.
  auto session2 = std::make_shared<ValueDictionary>();
  session2->Intern(S("zzz"));
  session2->Intern(S("a1"));

  ASSERT_TRUE(source
                  .Execute(Q(source, session1,
                             {{"Cd", S("c1")}, {"Artist", S("a1")}}))
                  .ok());
  EXPECT_EQ(source.misses(), 1u);
  // Same query, reversed supply order, same session: hit.
  ASSERT_TRUE(source
                  .Execute(Q(source, session1,
                             {{"Artist", S("a1")}, {"Cd", S("c1")}}))
                  .ok());
  EXPECT_EQ(source.hits(), 1u);
  // Same query from a different session (different ids): still a hit,
  // and the answer is re-keyed to the requesting session's dictionary.
  auto cross = source.Execute(
      Q(source, session2, {{"Artist", S("a1")}, {"Cd", S("c1")}}));
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(source.hits(), 2u);
  EXPECT_EQ(source.misses(), 1u);
  EXPECT_EQ(cross->dict_ptr(), session2);
  EXPECT_TRUE(cross->Contains({S("c1"), S("a1"), S("$15")}));
}

TEST(CachingSourceTest, DoesNotCacheErrors) {
  CachingSource source(
      std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
          SourceView::MakeUnsafe("v3", {"Cd", "Artist", "Price"}, "bff"),
          CdData())));
  EXPECT_FALSE(
      source.Execute(Q(source, std::make_shared<ValueDictionary>(), {}))
          .ok());
  EXPECT_EQ(source.misses(), 0u);
}

TEST(AccessLogTest, CountersAndTrace) {
  AccessLog log;
  AccessRecord r1;
  r1.source = "v1";
  r1.rendered_query = "v1(t1, C)";
  r1.tuples_returned = 1;
  r1.new_tuples = 1;
  r1.returned_rendered = {"<t1, c1>"};
  r1.new_bindings = {"Cd = c1"};
  log.Record(r1);
  AccessRecord r2;
  r2.source = "v3";
  r2.rendered_query = "v3(c9, A, P)";
  r2.tuples_returned = 0;
  log.Record(r2);
  AccessRecord r3 = r1;
  log.Record(r3);

  EXPECT_EQ(log.total_queries(), 3u);
  EXPECT_EQ(log.QueriesTo("v1"), 2u);
  EXPECT_EQ(log.QueriesTo("v3"), 1u);
  EXPECT_EQ(log.productive_queries(), 2u);
  EXPECT_EQ(log.total_tuples_returned(), 2u);
  auto counts = log.PerSourceCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "v1");
  EXPECT_EQ(counts[0].second, 2u);

  std::string full = log.ToTable(/*productive_only=*/false);
  std::string productive = log.ToTable(/*productive_only=*/true);
  EXPECT_NE(full.find("v3(c9, A, P)"), std::string::npos);
  EXPECT_EQ(productive.find("v3(c9, A, P)"), std::string::npos);
  EXPECT_NE(productive.find("Cd = c1"), std::string::npos);

  log.Clear();
  EXPECT_EQ(log.total_queries(), 0u);
}

TEST(AccessLogTest, LazyRecordsRenderOnDemand) {
  auto view = std::make_shared<const SourceView>(
      SourceView::MakeUnsafe("v1", {"Song", "Cd"}, "bf"));
  auto dict = std::make_shared<ValueDictionary>();
  AccessRecord record;
  record.source = "v1";
  record.query = SourceQuery::MakeUnsafe(*view, dict, {{"Song", S("t1")}});
  record.view = view;
  record.tuples_returned = 1;
  record.new_tuples = 1;
  record.returned_ids = {{dict->Intern(S("t1")), dict->Intern(S("c1"))}};
  record.new_binding_ids = {{"Cd", dict->Intern(S("c1"))}};

  AccessLog lazy;
  const uint64_t before = dict->translation_count();
  lazy.Record(record);
  // Lazy recording touches the dictionary not at all...
  EXPECT_EQ(dict->translation_count(), before);
  // ...and the strings render on demand.
  const AccessRecord& stored = lazy.records().front();
  EXPECT_TRUE(stored.rendered_query.empty());
  EXPECT_EQ(stored.RenderedQuery(), "v1(t1, C)");
  EXPECT_EQ(stored.ReturnedRendered(),
            (std::vector<std::string>{"<t1, c1>"}));
  EXPECT_EQ(stored.NewBindings(), (std::vector<std::string>{"Cd = c1"}));
  std::string table = lazy.ToTable(/*productive_only=*/false);
  EXPECT_NE(table.find("v1(t1, C)"), std::string::npos);
  EXPECT_NE(table.find("Cd = c1"), std::string::npos);

  AccessLog eager;
  eager.set_eager_render(true);
  eager.Record(record);
  EXPECT_EQ(eager.records().front().rendered_query, "v1(t1, C)");
  EXPECT_EQ(eager.records().front().new_bindings,
            (std::vector<std::string>{"Cd = c1"}));
}

}  // namespace
}  // namespace limcap::capability
