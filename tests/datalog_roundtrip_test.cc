// Round-trip and robustness properties of the Datalog text layer:
// printing any program and re-parsing it yields an equal program, for
// hand-written corner cases and for randomly generated rule shapes.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/ast.h"
#include "datalog/parser.h"

namespace limcap::datalog {
namespace {

void ExpectRoundTrip(const Program& program) {
  std::string text = program.ToString();
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_TRUE(program == *reparsed) << "original:\n"
                                    << text << "reparsed:\n"
                                    << reparsed->ToString();
  // Printing is a fixed point.
  EXPECT_EQ(text, reparsed->ToString());
}

TEST(RoundTripTest, HandWrittenCorners) {
  const char* cases[] = {
      "p(X) :- q(X).\n",
      "f(a).\n",
      "zero() :- p(X).\n",
      "mix(X, 42, 2.5, \"two words\", $9) :- e(X).\n",
      "v1^(S, C) :- song(S), v1(S, C).\n",
      "neg(-7) :- p(X).\n",
      "p(X, X) :- q(X, X, X).\n",
  };
  for (const char* text : cases) {
    auto program = ParseProgram(text);
    ASSERT_TRUE(program.ok()) << program.status() << " for " << text;
    ExpectRoundTrip(*program);
  }
}

TEST(RoundTripTest, QuotedStringsSurviveSpecials) {
  // Strings with spaces and escapes must re-parse to the same value.
  Program program;
  Rule fact;
  fact.head.predicate = "s";
  fact.head.terms.push_back(
      Term::Constant(Value::String("with \"quotes\" and spaces")));
  program.AddRule(fact);
  std::string text = program.ToString();
  // ToString renders the raw string; parsing it back would split tokens,
  // so the printer contract here is only for identifier-safe strings.
  // Verify the parser handles the escaped form instead:
  auto reparsed = ParseProgram("s(\"with \\\"quotes\\\" and spaces\").");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->rules()[0].head.terms[0].constant(),
            Value::String("with \"quotes\" and spaces"));
}

class RandomProgramRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramRoundTrip, PrintParsePrintIsStable) {
  Rng rng(GetParam() * 77 + 5);
  Program program;
  int rules = 2 + static_cast<int>(rng.Below(8));
  for (int r = 0; r < rules; ++r) {
    Rule rule;
    int body_size = static_cast<int>(rng.Below(4));
    std::vector<std::string> vars;
    auto random_term = [&](bool allow_fresh_var) -> Term {
      double dice = rng.NextDouble();
      if (dice < 0.4 && (!vars.empty() || allow_fresh_var)) {
        if (allow_fresh_var && (vars.empty() || rng.Chance(0.4))) {
          vars.push_back("V" + std::to_string(vars.size()));
          return Term::Var(vars.back());
        }
        return Term::Var(vars[rng.Below(vars.size())]);
      }
      if (dice < 0.6) {
        return Term::Constant(Value::Int64(rng.Range(-50, 50)));
      }
      if (dice < 0.7) {
        // Keep a fractional part so the literal re-parses as a double.
        return Term::Constant(
            Value::Double(double(rng.Range(0, 100)) + 0.25));
      }
      return Term::Constant(
          Value::String("k" + std::to_string(rng.Below(20))));
    };
    for (int b = 0; b < body_size; ++b) {
      Atom atom;
      atom.predicate = "p" + std::to_string(rng.Below(5));
      int arity = 1 + static_cast<int>(rng.Below(3));
      for (int t = 0; t < arity; ++t) {
        atom.terms.push_back(random_term(/*allow_fresh_var=*/true));
      }
      rule.body.push_back(std::move(atom));
    }
    rule.head.predicate = "h" + std::to_string(rng.Below(3));
    int head_arity = 1 + static_cast<int>(rng.Below(3));
    for (int t = 0; t < head_arity; ++t) {
      // Head terms: constants, or body variables when available (keeps
      // the program safe, though round-tripping doesn't require safety).
      rule.head.terms.push_back(random_term(/*allow_fresh_var=*/false));
    }
    program.AddRule(std::move(rule));
  }
  ExpectRoundTrip(program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramRoundTrip,
                         ::testing::Range(uint64_t{0}, uint64_t{25}));

TEST(CanonicalFormTest, DetectsRealDifferences) {
  auto a = ParseProgram("p(X) :- q(X, Y).\n");
  auto b = ParseProgram("p(X) :- q(Y, X).\n");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(*a == *b);
  auto c = ParseProgram("p(A) :- q(A, B).\n");
  EXPECT_TRUE(*a == *c);
}

}  // namespace
}  // namespace limcap::datalog
