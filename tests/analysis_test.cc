#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "analysis/executability.h"
#include "analysis/lint.h"
#include "capability/source_view.h"
#include "datalog/parser.h"
#include "datalog/safety.h"
#include "planner/domain_map.h"

namespace limcap::analysis {
namespace {

using capability::SourceView;

datalog::Program Parse(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  return std::move(program).value();
}

bool HasCode(const DiagnosticBag& bag, Code code) {
  for (const Diagnostic& d : bag.diagnostics()) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic* FindCode(const DiagnosticBag& bag, Code code) {
  for (const Diagnostic& d : bag.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Diagnostics engine.

TEST(DiagnosticsTest, CodeNamesAreStable) {
  EXPECT_EQ(CodeName(Code::kArityClash), "LC001");
  EXPECT_EQ(CodeName(Code::kViewArityMismatch), "LC010");
  EXPECT_EQ(CodeName(Code::kUnbindableViewAtom), "LC020");
  EXPECT_EQ(CodeName(Code::kUnfetchableView), "LC023");
}

TEST(DiagnosticsTest, DefaultSeverities) {
  EXPECT_EQ(DefaultSeverity(Code::kUnsafeHeadVariable), Severity::kError);
  EXPECT_EQ(DefaultSeverity(Code::kUnbindableViewAtom), Severity::kError);
  // Never-fire findings are warnings: a full Π(Q, V) legitimately
  // contains dead rules.
  EXPECT_EQ(DefaultSeverity(Code::kRuleNeverFires), Severity::kWarning);
  EXPECT_EQ(DefaultSeverity(Code::kSingletonVariable), Severity::kNote);
}

TEST(DiagnosticsTest, SortOrdersByRuleThenAtomThenCode) {
  DiagnosticBag bag;
  Location later;
  later.rule = 3;
  bag.Report(Code::kSingletonVariable, "later", later);
  Location earlier;
  earlier.rule = 1;
  earlier.atom = 0;
  bag.Report(Code::kUnsafeHeadVariable, "earlier", earlier);
  bag.Sort();
  EXPECT_EQ(bag.diagnostics()[0].message, "earlier");
  EXPECT_EQ(bag.diagnostics()[1].message, "later");
}

TEST(DiagnosticsTest, RenderTextCountsBySeverity) {
  DiagnosticBag bag;
  bag.Report(Code::kUnsafeHeadVariable, "bad head");
  bag.Report(Code::kGoalUnreachableRule, "dead rule");
  bag.Report(Code::kRecursiveProgram, "recursive");
  std::string text = bag.RenderText();
  EXPECT_NE(text.find("error[LC002] bad head"), std::string::npos);
  EXPECT_NE(text.find("1 error, 1 warning, 1 note"), std::string::npos);
  EXPECT_EQ(bag.errors(), 1u);
  EXPECT_EQ(bag.warnings(), 1u);
  EXPECT_EQ(bag.notes(), 1u);
  EXPECT_TRUE(bag.has_errors());
}

TEST(DiagnosticsTest, RenderJsonEscapes) {
  DiagnosticBag bag;
  Diagnostic& d = bag.Report(Code::kArityClash, "say \"hi\"\n");
  d.notes.push_back("tab\there");
  std::string json = bag.RenderJson();
  EXPECT_NE(json.find("\"code\":\"LC001\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

TEST(DiagnosticsTest, ToStatusCarriesFirstErrorAndCount) {
  DiagnosticBag bag;
  bag.Report(Code::kRecursiveProgram, "just a note");
  bag.Report(Code::kUnsafeHeadVariable, "first error");
  bag.Report(Code::kArityClash, "second error");
  Status status = bag.ToStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("LC002: first error"), std::string::npos);
  EXPECT_NE(status.message().find("and 1 more error"), std::string::npos);
  EXPECT_TRUE(DiagnosticBag().ToStatus().ok());
}

// ---------------------------------------------------------------------
// Safety migrated onto diagnostics (LC001-LC003).

TEST(SafetyDiagnosticsTest, UnsafeHeadNamesRuleAndVariable) {
  datalog::Program program = Parse("p(X, Y) :- q(X).");
  Status status = datalog::CheckSafety(program);
  ASSERT_FALSE(status.ok());
  // The message names the code, the offending variable, and the rule.
  EXPECT_NE(status.message().find("LC002"), std::string::npos);
  EXPECT_NE(status.message().find("'Y'"), std::string::npos);
  EXPECT_NE(status.message().find("p(X, Y) :- q(X)."), std::string::npos);
}

TEST(SafetyDiagnosticsTest, NonGroundFactIsItsOwnCode) {
  datalog::Program program = Parse("p(X).");
  DiagnosticBag bag;
  datalog::AppendSafetyDiagnostics(program, nullptr, &bag);
  const Diagnostic* d = FindCode(bag, Code::kNonGroundFact);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'X'"), std::string::npos);
  EXPECT_FALSE(HasCode(bag, Code::kUnsafeHeadVariable));
}

TEST(SafetyDiagnosticsTest, ArityClashNamesBothArities) {
  datalog::Program program = Parse("p(a).\nq(X) :- p(X, X).");
  DiagnosticBag bag;
  datalog::AppendSafetyDiagnostics(program, nullptr, &bag);
  const Diagnostic* d = FindCode(bag, Code::kArityClash);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("arity 2"), std::string::npos);
  EXPECT_NE(d->message.find("arity 1"), std::string::npos);
}

TEST(SafetyDiagnosticsTest, CleanProgramPasses) {
  datalog::Program program = Parse("p(a).\nq(X) :- p(X).");
  EXPECT_TRUE(datalog::CheckSafety(program).ok());
}

// The dialect has no negation and no arithmetic, so "bound only in a
// negated / built-in position" cannot arise: the parser rejects the
// syntax outright. These tests lock that door shut — if negation or
// comparisons are ever added, they fail and force the safety rule
// (negated and built-in atoms must NOT bind head variables) to be
// revisited.
TEST(SafetyDiagnosticsTest, NegationIsNotInTheDialect) {
  EXPECT_FALSE(datalog::ParseProgram("p(X) :- not q(X).").ok());
  EXPECT_FALSE(datalog::ParseProgram("p(X) :- !q(X).").ok());
  EXPECT_FALSE(datalog::ParseProgram("p(X) :- \\+ q(X).").ok());
}

TEST(SafetyDiagnosticsTest, ArithmeticIsNotInTheDialect) {
  EXPECT_FALSE(datalog::ParseProgram("p(X) :- q(X), X > 1.").ok());
  EXPECT_FALSE(datalog::ParseProgram("p(X) :- q(Y), X = Y + 1.").ok());
  EXPECT_FALSE(datalog::ParseProgram("p(X) :- q(X), X != a.").ok());
}

// ---------------------------------------------------------------------
// Parser source map.

TEST(SourceMapTest, RecordsRuleAndAtomPositions) {
  datalog::ProgramSourceMap map;
  auto program = datalog::ParseProgram(
      "p(a).\n"
      "q(X) :- p(X),\n"
      "        p(X).\n",
      &map);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(map.rules.size(), 2u);
  EXPECT_EQ(map.rules[0].rule.line, 1);
  EXPECT_EQ(map.rules[1].rule.line, 2);
  ASSERT_EQ(map.rules[1].body.size(), 2u);
  EXPECT_EQ(map.rules[1].body[0].line, 2);
  EXPECT_EQ(map.rules[1].body[1].line, 3);
}

// ---------------------------------------------------------------------
// Structural analyzer passes.

TEST(AnalyzerTest, UndeclaredPredicateWarns) {
  datalog::Program program = Parse("ans(X) :- mystery(X).");
  AnalysisResult result = AnalyzeProgram(program, {});
  const Diagnostic* d = FindCode(result.diagnostics, Code::kUndeclaredPredicate);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'mystery'"), std::string::npos);
}

TEST(AnalyzerTest, ViewPredicatesCountAsDeclared) {
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "ff");
  datalog::Program program = Parse("ans(X) :- v(X, Y), v(Y, Z).");
  AnalysisResult result = AnalyzeProgram(program, {v});
  EXPECT_FALSE(HasCode(result.diagnostics, Code::kUndeclaredPredicate));
}

TEST(AnalyzerTest, SingletonVariableNoted) {
  datalog::Program program = Parse("ans(X) :- p(X, Lonely).\np(a, b).");
  AnalysisResult result = AnalyzeProgram(program, {});
  const Diagnostic* d = FindCode(result.diagnostics, Code::kSingletonVariable);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'Lonely'"), std::string::npos);
}

TEST(AnalyzerTest, GoalUnreachableRuleWarns) {
  datalog::Program program = Parse(
      "p(a).\n"
      "ans(X) :- p(X).\n"
      "orphan(X) :- p(X).");
  AnalysisResult result = AnalyzeProgram(program, {});
  const Diagnostic* d =
      FindCode(result.diagnostics, Code::kGoalUnreachableRule);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'orphan'"), std::string::npos);
}

TEST(AnalyzerTest, FetchDomainRulesExemptFromReachability) {
  // domA never appears in a rule body, but the evaluator consults it to
  // query v (whose template binds A) — it must not be called useless.
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "bf");
  datalog::Program program = Parse(
      "domA(a1).\n"
      "ans(Y) :- v(a1, Y).");
  AnalysisResult result = AnalyzeProgram(program, {v});
  EXPECT_FALSE(HasCode(result.diagnostics, Code::kGoalUnreachableRule));
}

TEST(AnalyzerTest, MissingGoalWarns) {
  datalog::Program program = Parse("p(a).");
  AnalysisOptions options;
  options.goal_predicate = "ans";
  AnalysisResult result = AnalyzeProgram(program, {}, options);
  const Diagnostic* d =
      FindCode(result.diagnostics, Code::kGoalUnreachableRule);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("not defined"), std::string::npos);
}

TEST(AnalyzerTest, TaggedPerConnectionGoalsCountAsGoals) {
  datalog::Program program = Parse(
      "p(a).\n"
      "ans$c0(X) :- p(X).");
  AnalysisResult result = AnalyzeProgram(program, {});
  EXPECT_FALSE(HasCode(result.diagnostics, Code::kGoalUnreachableRule));
}

TEST(AnalyzerTest, RecursionNoted) {
  datalog::Program program = Parse(
      "ans(X) :- p(X).\n"
      "p(X) :- q(X).\n"
      "q(X) :- p(X).\n"
      "p(a).");
  AnalysisResult result = AnalyzeProgram(program, {});
  EXPECT_TRUE(HasCode(result.diagnostics, Code::kRecursiveProgram));
}

TEST(AnalyzerTest, ViewArityMismatchIsError) {
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "ff");
  datalog::Program program = Parse("ans(X) :- v(X).");
  AnalysisResult result = AnalyzeProgram(program, {v});
  EXPECT_TRUE(HasCode(result.diagnostics, Code::kViewArityMismatch));
  EXPECT_FALSE(result.ok());
}

TEST(AnalyzerTest, PassTogglesDisablePasses) {
  datalog::Program program = Parse("ans(X) :- p(X, Lonely).\np(a, b).");
  AnalysisOptions options;
  options.note_singleton_variables = false;
  options.check_executability = false;
  AnalysisResult result = AnalyzeProgram(program, {}, options);
  EXPECT_FALSE(HasCode(result.diagnostics, Code::kSingletonVariable));
  EXPECT_FALSE(result.executability_ran);
}

// ---------------------------------------------------------------------
// Adorned executability (the tentpole pass).

TEST(ExecutabilityTest, SipAndCanFireDisagreeOnGlobalFetch) {
  // p's body gives v no bindings of its own, so no SIP order exists —
  // but domA is populated elsewhere in the program, the evaluator *will*
  // fetch v globally, and p fires. The rule must be flagged (LC020) yet
  // never pruned.
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "bf");
  datalog::Program program = Parse(
      "domA(a1).\n"
      "p(X, Y) :- v(X, Y).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v}, planner::DomainMap());
  ASSERT_EQ(result.rules.size(), 2u);
  EXPECT_FALSE(result.rules[1].sip_executable);
  EXPECT_TRUE(result.rules[1].can_fire);
  EXPECT_EQ(result.rules[1].unbindable_atoms,
            std::vector<std::size_t>{0});
  EXPECT_TRUE(result.fetchable_views.count("v") > 0);

  // Flagged as LC020...
  DiagnosticBag bag;
  AppendExecutabilityDiagnostics(program, {v}, result, nullptr, &bag);
  EXPECT_TRUE(HasCode(bag, Code::kUnbindableViewAtom));
  EXPECT_FALSE(HasCode(bag, Code::kRuleNeverFires));

  // ...but never pruned: pruning it would lose p's facts.
  datalog::Program pruned = PruneNeverFiringRules(program, result);
  EXPECT_EQ(pruned.rules().size(), 2u);
}

TEST(ExecutabilityTest, UnfetchableViewKillsRule) {
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "bf");
  datalog::Program program = Parse("p(X, Y) :- v(X, Y).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v}, planner::DomainMap());
  ASSERT_EQ(result.rules.size(), 1u);
  EXPECT_FALSE(result.rules[0].can_fire);
  EXPECT_EQ(result.rules[0].dead_atoms, std::vector<std::size_t>{0});
  EXPECT_TRUE(result.fetchable_views.empty());

  DiagnosticBag bag;
  AppendExecutabilityDiagnostics(program, {v}, result, nullptr, &bag);
  EXPECT_TRUE(HasCode(bag, Code::kRuleNeverFires));
  EXPECT_TRUE(HasCode(bag, Code::kUnfetchableView));
  EXPECT_TRUE(HasCode(bag, Code::kUnproduciblePredicate));

  EXPECT_TRUE(PruneNeverFiringRules(program, result).rules().empty());
}

TEST(ExecutabilityTest, FixpointPropagatesThroughFeederChain) {
  // v1 feeds domB which unlocks v2 — rule-level verdicts must iterate
  // to the program-level fixpoint.
  SourceView v1 = SourceView::MakeUnsafe("v1", {"A", "B"}, "bf");
  SourceView v2 = SourceView::MakeUnsafe("v2", {"B", "C"}, "bf");
  datalog::Program program = Parse(
      "domA(a1).\n"
      "v1a(X, Y) :- domA(X), v1(X, Y).\n"
      "domB(Y) :- v1a(X, Y).\n"
      "v2a(X, Y) :- domB(X), v2(X, Y).\n"
      "ans(Z) :- v2a(Y, Z).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v1, v2}, planner::DomainMap());
  for (const RuleVerdict& verdict : result.rules) {
    EXPECT_TRUE(verdict.sip_executable);
    EXPECT_TRUE(verdict.can_fire);
  }
  EXPECT_TRUE(result.sip_producible.count("ans") > 0);
  EXPECT_EQ(result.fetchable_views.size(), 2u);
}

TEST(ExecutabilityTest, BrokenFeederPoisonsDownstreamRules) {
  // Nothing populates domA, so v1 is unfetchable and every rule
  // downstream of it — transitively — is dead.
  SourceView v1 = SourceView::MakeUnsafe("v1", {"A", "B"}, "bf");
  SourceView v2 = SourceView::MakeUnsafe("v2", {"B", "C"}, "bf");
  datalog::Program program = Parse(
      "v1a(X, Y) :- domA(X), v1(X, Y).\n"
      "domB(Y) :- v1a(X, Y).\n"
      "v2a(X, Y) :- domB(X), v2(X, Y).\n"
      "ans(Z) :- v2a(Y, Z).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v1, v2}, planner::DomainMap());
  for (const RuleVerdict& verdict : result.rules) {
    EXPECT_FALSE(verdict.can_fire);
    EXPECT_FALSE(verdict.sip_executable);
  }
  EXPECT_TRUE(PruneNeverFiringRules(program, result).rules().empty());
}

TEST(ExecutabilityTest, ConstantsBindViewPositions) {
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "bf");
  datalog::Program program = Parse(
      "domA(a1).\n"
      "ans(Y) :- v(a1, Y).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v}, planner::DomainMap());
  EXPECT_TRUE(result.rules[1].sip_executable);
  EXPECT_TRUE(result.rules[1].can_fire);
}

TEST(ExecutabilityTest, WitnessOrderReordersBody) {
  // The view atom comes first in the body but must be placed second:
  // the witness order proves a valid ordering exists.
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "bf");
  datalog::Program program = Parse(
      "domA(a1).\n"
      "ans(Y) :- v(X, Y), domA(X).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v}, planner::DomainMap());
  ASSERT_TRUE(result.rules[1].sip_executable);
  EXPECT_EQ(result.rules[1].sip_order,
            (std::vector<std::size_t>{1, 0}));
}

TEST(ExecutabilityTest, MultiTemplateViewUsesAnySatisfiedTemplate) {
  SourceView v = SourceView::MakeUnsafe(
      "v", {"A", "B"}, std::vector<std::string>{"bf", "fb"});
  datalog::Program program = Parse(
      "domB(b1).\n"
      "ans(X) :- v(X, Y), domB(Y).");
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v}, planner::DomainMap());
  EXPECT_TRUE(result.rules[1].sip_executable);
  EXPECT_TRUE(result.rules[1].can_fire);
}

TEST(ExecutabilityTest, InputAdornmentsSeedTheSipSearch) {
  // With p's first argument declared bound on entry (a top-down call
  // pattern), the SIP search succeeds; the evaluator-side can_fire
  // still fails because no domain feeds v's fetch.
  SourceView v = SourceView::MakeUnsafe("v", {"A", "B"}, "bf");
  datalog::Program program = Parse("p(X, Y) :- v(X, Y).");
  ExecutabilityOptions options;
  options.input_adornments["p"] = {true, false};
  ExecutabilityResult result =
      AnalyzeExecutability(program, {v}, planner::DomainMap(), options);
  EXPECT_TRUE(result.rules[0].sip_executable);
  EXPECT_FALSE(result.rules[0].can_fire);
}

TEST(ExecutabilityTest, ReachableViewsColdStartAndSeeded) {
  SourceView v1 = SourceView::MakeUnsafe("v1", {"A", "B"}, "ff");
  SourceView v2 = SourceView::MakeUnsafe("v2", {"B", "C"}, "bf");
  SourceView v3 = SourceView::MakeUnsafe("v3", {"D", "E"}, "bf");
  planner::DomainMap domains;
  std::set<std::string> cold = ReachableViews({v1, v2, v3}, domains);
  EXPECT_EQ(cold, (std::set<std::string>{"v1", "v2"}));
  std::set<std::string> seeded =
      ReachableViews({v1, v2, v3}, domains, {"D"});
  EXPECT_EQ(seeded, (std::set<std::string>{"v1", "v2", "v3"}));
}

// ---------------------------------------------------------------------
// Lint driver.

TEST(LintTest, RejectsProgramAndQueryTogether) {
  LintRequest request;
  request.catalog_text = "source v(A, B) [ff] {}\n";
  request.has_program = true;
  request.has_query = true;
  EXPECT_FALSE(Lint(request).ok());
}

TEST(LintTest, CatalogOnlyReportsColdStartReachability) {
  LintRequest request;
  request.catalog_text =
      "source v1(A, B) [ff] {}\n"
      "source v2(C, D) [bf] {}\n";
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  const Diagnostic* d =
      FindCode(report->analysis.diagnostics, Code::kUnfetchableView);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'v2'"), std::string::npos);
  EXPECT_NE(report->rendered.find("LC023"), std::string::npos);
}

TEST(LintTest, QueryModeBuildsAndAnalyzesFullProgram) {
  LintRequest request;
  request.catalog_text =
      "source v1(A, B) [bf] { (a0, b0) }\n"
      "source v2(B, C) [bf] { (b0, c0) }\n";
  request.has_query = true;
  request.query_text = "<{A = a0}, {C}, {{v1, v2}}>";
  auto report = Lint(request);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->ok());
  EXPECT_FALSE(report->program.rules().empty());
  EXPECT_TRUE(report->analysis.executability_ran);
}

TEST(LintTest, JsonRendering) {
  LintRequest request;
  request.catalog_text = "source v(A, B) [bf] {}\n";
  request.json = true;
  auto report = Lint(request);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rendered.front(), '{');
  EXPECT_NE(report->rendered.find("\"diagnostics\""), std::string::npos);
}

TEST(LintTest, UnparsableInputsAreStatusErrors) {
  LintRequest request;
  request.catalog_text = "this is not a catalog";
  EXPECT_FALSE(Lint(request).ok());

  request.catalog_text = "source v(A, B) [bf] {}\n";
  request.has_program = true;
  request.program_text = "p(X :- q(X).";
  EXPECT_FALSE(Lint(request).ok());
}

}  // namespace
}  // namespace limcap::analysis
