#include <gtest/gtest.h>

#include "paperdata/paper_examples.h"
#include "planner/closure.h"

namespace limcap::planner {
namespace {

using capability::SourceView;
using paperdata::MakeExample21;
using paperdata::MakeExample41;
using paperdata::MakeExample51;
using paperdata::MakeExample52;
using paperdata::PaperExample;

std::vector<SourceView> ViewsNamed(const PaperExample& example,
                                   const std::vector<std::string>& names) {
  std::vector<SourceView> out;
  for (const std::string& name : names) {
    for (const SourceView& view : example.views) {
      if (view.name() == name) out.push_back(view);
    }
  }
  return out;
}

TEST(FClosureTest, PaperExample42FirstCase) {
  // Example 4.2: f-closure({A}, {v1, v2, v3}) = {v1, v2, v3}.
  PaperExample example = MakeExample41();
  auto views = ViewsNamed(example, {"v1", "v2", "v3"});
  FClosure closure = ComputeFClosure({"A"}, views);
  EXPECT_EQ(closure.views,
            (std::set<std::string>{"v1", "v2", "v3"}));
  // v1 must come first: it is the only view whose requirement {A} is met
  // initially.
  EXPECT_EQ(closure.order.front(), "v1");
  EXPECT_TRUE(closure.bound_attributes.count("D"));
}

TEST(FClosureTest, PaperExample42SecondCase) {
  // Example 4.2: f-closure({Song}, {v1, v4}) = {v1} and
  // f-closure({Song}, {v1, v3}) = {v1, v3}.
  PaperExample example = MakeExample21();
  FClosure c14 = ComputeFClosure({"Song"}, ViewsNamed(example, {"v1", "v4"}));
  EXPECT_EQ(c14.views, (std::set<std::string>{"v1"}));
  FClosure c13 = ComputeFClosure({"Song"}, ViewsNamed(example, {"v1", "v3"}));
  EXPECT_EQ(c13.views, (std::set<std::string>{"v1", "v3"}));
}

TEST(FClosureTest, EmptyInitialBindsOnlyFreeSources) {
  PaperExample example = MakeExample41();
  FClosure closure = ComputeFClosure({}, example.views);
  // Only v4 [ff] is immediately queryable; it binds C and E, unlocking
  // v2, v3, v5; nothing binds A for v1 except v2's free A.
  EXPECT_TRUE(closure.Contains("v4"));
  EXPECT_TRUE(closure.Contains("v2"));
  EXPECT_TRUE(closure.Contains("v3"));
  EXPECT_TRUE(closure.Contains("v5"));
  EXPECT_TRUE(closure.Contains("v1"));  // via v2's free A
}

TEST(FClosureTest, MonotoneInInitialSet) {
  PaperExample example = MakeExample21();
  FClosure small = ComputeFClosure({"Song"}, example.views);
  FClosure large = ComputeFClosure({"Song", "Artist"}, example.views);
  for (const std::string& view : small.views) {
    EXPECT_TRUE(large.Contains(view));
  }
}

TEST(FClosureTest, Idempotent) {
  PaperExample example = MakeExample21();
  FClosure once = ComputeFClosure({"Song"}, example.views);
  FClosure twice = ComputeFClosure(once.bound_attributes, example.views);
  EXPECT_EQ(once.views, twice.views);
}

TEST(IndependenceTest, Example41Connections) {
  PaperExample example = MakeExample41();
  // T1 = {v1, v3} is independent; T2 = {v2, v3} is not.
  EXPECT_TRUE(IsIndependent({"A"}, ViewsNamed(example, {"v1", "v3"})));
  EXPECT_FALSE(IsIndependent({"A"}, ViewsNamed(example, {"v2", "v3"})));
}

TEST(IndependenceTest, Example21OnlyT1Independent) {
  PaperExample example = MakeExample21();
  EXPECT_TRUE(IsIndependent({"Song"}, ViewsNamed(example, {"v1", "v3"})));
  EXPECT_FALSE(IsIndependent({"Song"}, ViewsNamed(example, {"v1", "v4"})));
  EXPECT_FALSE(IsIndependent({"Song"}, ViewsNamed(example, {"v2", "v3"})));
  EXPECT_FALSE(IsIndependent({"Song"}, ViewsNamed(example, {"v2", "v4"})));
}

TEST(IndependenceTest, ExecutableSequenceOrder) {
  PaperExample example = MakeExample41();
  auto sequence = ExecutableSequence({"A"}, ViewsNamed(example, {"v3", "v1"}));
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(*sequence, (std::vector<std::string>{"v1", "v3"}));
  EXPECT_FALSE(
      ExecutableSequence({"A"}, ViewsNamed(example, {"v2", "v3"})).ok());
}

TEST(KernelTest, IndependentConnectionHasEmptyKernel) {
  PaperExample example = MakeExample41();
  EXPECT_TRUE(ComputeKernel({"A"}, ViewsNamed(example, {"v1", "v3"})).empty());
}

TEST(KernelTest, Example41T2KernelIsC) {
  PaperExample example = MakeExample41();
  EXPECT_EQ(ComputeKernel({"A"}, ViewsNamed(example, {"v2", "v3"})),
            (AttributeSet{"C"}));
}

TEST(KernelTest, Example51KernelIsD) {
  PaperExample example = MakeExample51();
  EXPECT_EQ(ComputeKernel({"A"}, ViewsNamed(example, {"v1", "v2", "v3"})),
            (AttributeSet{"D"}));
}

TEST(KernelTest, KernelSatisfiesDefinition) {
  // Definition 5.1 on Example 5.2: f-closure(K ∪ I, T) = T and removal of
  // any attribute breaks it.
  PaperExample example = MakeExample52();
  auto views = ViewsNamed(example, {"v1", "v2", "v3"});
  AttributeSet kernel = ComputeKernel({"B"}, views);
  AttributeSet start = kernel;
  start.insert("B");
  EXPECT_EQ(ComputeFClosure(start, views).views.size(), views.size());
  for (const std::string& attribute : kernel) {
    AttributeSet smaller = start;
    smaller.erase(attribute);
    EXPECT_LT(ComputeFClosure(smaller, views).views.size(), views.size())
        << "kernel not minimal: " << attribute << " removable";
  }
}

TEST(KernelTest, Example52HasThreeKernels) {
  PaperExample example = MakeExample52();
  auto views = ViewsNamed(example, {"v1", "v2", "v3"});
  std::vector<AttributeSet> kernels = AllKernels({"B"}, views);
  EXPECT_EQ(kernels, (std::vector<AttributeSet>{{"A"}, {"C"}, {"E"}}));
}

TEST(KernelTest, AllKernelsOfIndependentConnectionIsEmptySet) {
  PaperExample example = MakeExample41();
  auto kernels = AllKernels({"A"}, ViewsNamed(example, {"v1", "v3"}));
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_TRUE(kernels[0].empty());
}

TEST(BFChainTest, Example41Chain) {
  // (v4, v2, v1, v3) is a BF-chain in Example 4.1.
  PaperExample example = MakeExample41();
  EXPECT_TRUE(IsBFChain(ViewsNamed(example, {"v4", "v2", "v1", "v3"})));
  // (v3, v4) is not: F(v3) = {D} does not meet B(v4) = {}.
  EXPECT_FALSE(IsBFChain(ViewsNamed(example, {"v3", "v4"})));
  EXPECT_FALSE(IsBFChain({}));
  EXPECT_TRUE(IsBFChain(ViewsNamed(example, {"v1"})));
}

TEST(BClosureTest, Example41BClosureOfC) {
  // The paper: b-closure(C) = {v1, v2, v4}.
  PaperExample example = MakeExample41();
  EXPECT_EQ(ComputeBClosure(std::string("C"), example.views),
            (std::set<std::string>{"v1", "v2", "v4"}));
}

TEST(BClosureTest, Example52AllKernelsShareBClosure) {
  // Lemma 5.3 on Example 5.2: the kernels {A}, {C}, {E} all have
  // backward-closure {v1, v2, v3, v4}.
  PaperExample example = MakeExample52();
  auto views = ViewsNamed(example, {"v1", "v2", "v3"});
  std::set<std::string> expected{"v1", "v2", "v3", "v4"};
  for (const AttributeSet& kernel : AllKernels({"B"}, views)) {
    EXPECT_EQ(ComputeBClosure(kernel, example.views), expected);
  }
}

TEST(BClosureTest, Lemma52ChainContainment) {
  // Lemma 5.2: a BF-chain from a view binding A1 to a view freeing A2
  // implies b-closure(A1) ⊆ b-closure(A2). Exercise it on Example 4.1
  // with the chain (v1, v3): A1 = A (bound by head v1), A2 = D (freed by
  // tail v3).
  PaperExample example = MakeExample41();
  auto a_closure = ComputeBClosure(std::string("A"), example.views);
  auto d_closure = ComputeBClosure(std::string("D"), example.views);
  for (const std::string& view : a_closure) {
    EXPECT_TRUE(d_closure.count(view)) << view;
  }
}

TEST(BClosureTest, UnionOverAttributes) {
  PaperExample example = MakeExample41();
  auto combined = ComputeBClosure(AttributeSet{"C", "F"}, example.views);
  auto c_only = ComputeBClosure(std::string("C"), example.views);
  auto f_only = ComputeBClosure(std::string("F"), example.views);
  std::set<std::string> expected = c_only;
  expected.insert(f_only.begin(), f_only.end());
  EXPECT_EQ(combined, expected);
}

}  // namespace
}  // namespace limcap::planner
