#include <gtest/gtest.h>

#include "exec/latency_model.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap::exec {
namespace {

capability::AccessRecord Record(const char* source, std::size_t round) {
  capability::AccessRecord record;
  record.source = source;
  record.round = round;
  return record;
}

TEST(LatencyModelTest, Lookup) {
  LatencyModel model;
  model.default_latency_ms = 40;
  model.per_source_ms["slow"] = 500;
  EXPECT_DOUBLE_EQ(model.LatencyOf("slow"), 500);
  EXPECT_DOUBLE_EQ(model.LatencyOf("anything"), 40);
}

TEST(LatencyModelTest, HandComputedMakespans) {
  capability::AccessLog log;
  // Round 0: two queries to a, one to b. Round 1: one query to b.
  log.Record(Record("a", 0));
  log.Record(Record("a", 0));
  log.Record(Record("b", 0));
  log.Record(Record("b", 1));
  LatencyModel model;
  model.per_source_ms = {{"a", 100}, {"b", 30}};

  MakespanReport report = EstimateMakespan(log, model);
  EXPECT_DOUBLE_EQ(report.sequential_ms, 100 + 100 + 30 + 30);
  // Parallel: max(100, 30) + 30.
  EXPECT_DOUBLE_EQ(report.parallel_ms, 100 + 30);
  // Per-source serial: round 0 = max(2*100, 1*30); round 1 = 30.
  EXPECT_DOUBLE_EQ(report.per_source_serial_ms, 200 + 30);
  EXPECT_EQ(report.rounds, 2u);
  EXPECT_GT(report.ParallelSpeedup(), 1.0);
}

TEST(LatencyModelTest, EmptyLog) {
  MakespanReport report = EstimateMakespan(capability::AccessLog(),
                                           LatencyModel());
  EXPECT_DOUBLE_EQ(report.sequential_ms, 0);
  EXPECT_DOUBLE_EQ(report.ParallelSpeedup(), 1.0);
  EXPECT_EQ(report.rounds, 0u);
}

TEST(LatencyModelTest, Example21RoundsGiveRealSpeedup) {
  auto example = paperdata::MakeExample21();
  QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok());

  MakespanReport makespan =
      EstimateMakespan(report->exec.log, LatencyModel());
  // 12 sequential queries at 50 ms each.
  EXPECT_DOUBLE_EQ(makespan.sequential_ms, 12 * 50.0);
  // Rounds exist and intra-round parallelism saves time.
  EXPECT_GT(makespan.rounds, 1u);
  EXPECT_LT(makespan.parallel_ms, makespan.sequential_ms);
  EXPECT_LE(makespan.parallel_ms, makespan.per_source_serial_ms);
  EXPECT_LE(makespan.per_source_serial_ms, makespan.sequential_ms);
}

}  // namespace
}  // namespace limcap::exec
