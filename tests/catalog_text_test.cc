#include <gtest/gtest.h>

#include "capability/catalog_text.h"
#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

namespace limcap::capability {
namespace {

constexpr const char* kExample21Text = R"(
% Example 2.1 — four sources of musical CDs (paper Table 1 / Figure 1)
source v1(Song, Cd) [bf] {
  (t1, c1)
  (t2, c3)
}
source v2(Song, Cd) [fb] { (t1, c4), (t2, c2), (t1, c5) }
source v3(Cd, Artist, Price) [bff] {
  (c1, a1, "$15")
  (c3, a3, "$14")
}
source v4(Cd, Artist, Price) [fbf] {
  (c1, a1, "$13") (c2, a1, "$12") (c4, a3, "$10") (c5, a5, "$11")
}
)";

TEST(CatalogTextTest, ParsesExample21) {
  auto parsed = ParseCatalog(kExample21Text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->views.size(), 4u);
  EXPECT_EQ(parsed->views[0].ToString(), "v1(Song, Cd) [bf]");
  EXPECT_EQ(parsed->views[3].pattern().ToString(), "fbf");
  auto* v4 = dynamic_cast<InMemorySource*>(
      parsed->catalog.Find("v4").value());
  ASSERT_NE(v4, nullptr);
  EXPECT_EQ(v4->data().size(), 4u);
  EXPECT_TRUE(v4->data().Contains({Value::String("c5"), Value::String("a5"),
                                   Value::String("$11")}));
}

TEST(CatalogTextTest, ParsedCatalogAnswersThePaperQuery) {
  auto parsed = ParseCatalog(kExample21Text);
  ASSERT_TRUE(parsed.ok());
  auto example = paperdata::MakeExample21();  // for the query + domains
  exec::QueryAnswerer answerer(&parsed->catalog, example.domains);
  auto report = answerer.Answer(example.query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->exec.answer.size(), 3u);
}

TEST(CatalogTextTest, MultiTemplateAndTypedValues) {
  auto parsed = ParseCatalog(
      "source book(Author, Title, Price) [bff|fbf] {\n"
      "  (ullman, \"DB Systems\", 95)\n"
      "  (widom, intro, 70.5)\n"
      "}\n"
      "source empty(A) [f] {}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->views[0].templates().size(), 2u);
  auto* book =
      dynamic_cast<InMemorySource*>(parsed->catalog.Find("book").value());
  EXPECT_TRUE(book->data().Contains({Value::String("ullman"),
                                     Value::String("DB Systems"),
                                     Value::Int64(95)}));
  EXPECT_TRUE(book->data().Contains({Value::String("widom"),
                                     Value::String("intro"),
                                     Value::Double(70.5)}));
  auto* empty =
      dynamic_cast<InMemorySource*>(parsed->catalog.Find("empty").value());
  EXPECT_TRUE(empty->data().empty());
}

TEST(CatalogTextTest, Errors) {
  EXPECT_FALSE(ParseCatalog("view v1(A) [f] {}").ok());    // keyword
  EXPECT_FALSE(ParseCatalog("source v1(A) [x] {}").ok());  // adornment
  EXPECT_FALSE(ParseCatalog("source v1(A) [ff] {}").ok()); // arity
  EXPECT_FALSE(ParseCatalog("source v1(A) [f] { (a, b) }").ok());  // tuple
  EXPECT_FALSE(ParseCatalog("source v1(A) [f] { (a) ").ok());  // unclosed
  EXPECT_FALSE(
      ParseCatalog("source v1(A) [f] {}\nsource v1(A) [f] {}").ok());
  EXPECT_FALSE(ParseCatalog("source v1(A, A) [ff] {}").ok());  // dup attr
  // Errors carry a line number.
  auto bad = ParseCatalog("source v1(A) [f] {\n  (a, b)\n}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(CatalogTextTest, RoundTrip) {
  auto parsed = ParseCatalog(kExample21Text);
  ASSERT_TRUE(parsed.ok());
  auto text = CatalogToText(parsed->catalog);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = ParseCatalog(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << *text;
  ASSERT_EQ(reparsed->views.size(), parsed->views.size());
  for (std::size_t i = 0; i < parsed->views.size(); ++i) {
    EXPECT_EQ(reparsed->views[i].ToString(), parsed->views[i].ToString());
    auto* a = dynamic_cast<InMemorySource*>(
        parsed->catalog.Find(parsed->views[i].name()).value());
    auto* b = dynamic_cast<InMemorySource*>(
        reparsed->catalog.Find(parsed->views[i].name()).value());
    EXPECT_TRUE(a->data() == b->data()) << parsed->views[i].name();
  }
}

TEST(CatalogTextTest, SerializeQuotesNonBareStrings) {
  SourceCatalog catalog;
  SourceView view = SourceView::MakeUnsafe("v", {"A"}, "f");
  relational::Relation data(view.schema());
  data.InsertUnsafe({Value::String("has space")});
  data.InsertUnsafe({Value::String("quote\"inside")});
  data.InsertUnsafe({Value::String("bare_ok")});
  catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(view, std::move(data))));
  auto text = CatalogToText(catalog);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseCatalog(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << *text;
  auto* source =
      dynamic_cast<InMemorySource*>(reparsed->catalog.Find("v").value());
  EXPECT_TRUE(source->data().Contains({Value::String("has space")}));
  EXPECT_TRUE(source->data().Contains({Value::String("quote\"inside")}));
}

}  // namespace
}  // namespace limcap::capability
