#include <gtest/gtest.h>

#include <algorithm>

#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/hypergraph.h"

namespace limcap::planner {
namespace {

using capability::SourceView;
using paperdata::MakeExample21;
using paperdata::MakeExample41;

TEST(HypergraphTest, NodesAndEdges) {
  auto example = MakeExample21();
  Hypergraph hypergraph(example.views);
  EXPECT_EQ(hypergraph.attributes(),
            (std::vector<std::string>{"Artist", "Cd", "Price", "Song"}));
  EXPECT_EQ(hypergraph.ViewsContaining("Song"),
            (std::vector<std::string>{"v1", "v2"}));
  EXPECT_EQ(hypergraph.ViewsContaining("Price").size(), 2u);
  EXPECT_TRUE(hypergraph.ViewsContaining("Nope").empty());
}

TEST(HypergraphTest, Connectivity) {
  auto example = MakeExample21();
  Hypergraph hypergraph(example.views);
  EXPECT_TRUE(hypergraph.IsConnected({}));
  EXPECT_TRUE(hypergraph.IsConnected({"v1"}));
  EXPECT_TRUE(hypergraph.IsConnected({"v1", "v3"}));   // share Cd
  EXPECT_TRUE(hypergraph.IsConnected({"v1", "v2"}));   // share Song, Cd
  EXPECT_TRUE(hypergraph.IsConnected({"v1", "v2", "v3", "v4"}));
}

TEST(HypergraphTest, DisconnectedSets) {
  std::vector<SourceView> views = {
      SourceView::MakeUnsafe("p", {"A", "B"}, "bf"),
      SourceView::MakeUnsafe("q", {"B", "C"}, "bf"),
      SourceView::MakeUnsafe("r", {"X", "Y"}, "bf"),
  };
  Hypergraph hypergraph(views);
  EXPECT_FALSE(hypergraph.IsConnected({"p", "r"}));
  EXPECT_TRUE(hypergraph.IsConnected({"p", "q"}));
  EXPECT_FALSE(hypergraph.IsConnected({"p", "q", "r"}));
  EXPECT_EQ(hypergraph.ConnectedComponents(),
            (std::vector<std::vector<std::string>>{{"p", "q"}, {"r"}}));
}

TEST(HypergraphTest, DotRendering) {
  auto example = MakeExample41();
  Hypergraph hypergraph(example.views);
  std::string dot = hypergraph.ToDot();
  EXPECT_NE(dot.find("graph catalog"), std::string::npos);
  EXPECT_NE(dot.find("\"v1\" -- \"A\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"f\""), std::string::npos);
}

TEST(FindMinimalConnectionsTest, RecoversExample21Connections) {
  // From {Song, Price} alone the minimal connections are exactly the four
  // two-view joins the paper's query lists.
  auto example = MakeExample21();
  auto connections =
      FindMinimalConnections(example.views, {"Song", "Price"});
  ASSERT_EQ(connections.size(), 4u);
  std::set<std::string> rendered;
  for (const Connection& connection : connections) {
    rendered.insert(connection.ToString());
  }
  EXPECT_EQ(rendered, (std::set<std::string>{"{v1, v3}", "{v1, v4}",
                                             "{v2, v3}", "{v2, v4}"}));
}

TEST(FindMinimalConnectionsTest, SingleViewWhenItCovers) {
  auto example = MakeExample21();
  auto connections =
      FindMinimalConnections(example.views, {"Cd", "Price"});
  // v3 and v4 each cover both attributes alone; no two-view set is
  // minimal on top of them... except pairs not containing v3/v4 — {v1,
  // v2} does not cover Price, so exactly the two singletons remain.
  ASSERT_EQ(connections.size(), 2u);
  EXPECT_EQ(connections[0].size(), 1u);
  EXPECT_EQ(connections[1].size(), 1u);
}

TEST(FindMinimalConnectionsTest, UncoverableAttributeYieldsNothing) {
  auto example = MakeExample21();
  EXPECT_TRUE(FindMinimalConnections(example.views, {"Song", "Genre"})
                  .empty());
}

TEST(FindMinimalConnectionsTest, ConnectednessRequired) {
  std::vector<SourceView> views = {
      SourceView::MakeUnsafe("p", {"A", "B"}, "ff"),
      SourceView::MakeUnsafe("r", {"X", "Y"}, "ff"),
  };
  // {p, r} covers {A, X} but is disconnected: no connection exists.
  EXPECT_TRUE(FindMinimalConnections(views, {"A", "X"}).empty());
  // A bridging view makes {p, bridge} the unique minimal connection (the
  // bridge itself carries X, so r is not needed — and {p, bridge, r}
  // would not be minimal).
  views.push_back(SourceView::MakeUnsafe("bridge", {"B", "X"}, "ff"));
  auto connections = FindMinimalConnections(views, {"A", "X"});
  ASSERT_EQ(connections.size(), 1u);
  EXPECT_EQ(connections[0].ToString(), "{bridge, p}");
  // Require an r-only attribute and the three-view set is forced.
  auto three = FindMinimalConnections(views, {"A", "Y"});
  ASSERT_EQ(three.size(), 1u);
  EXPECT_EQ(three[0].ToString(), "{bridge, p, r}");
}

TEST(FindMinimalConnectionsTest, RespectsCaps) {
  auto example = MakeExample21();
  EXPECT_EQ(
      FindMinimalConnections(example.views, {"Song", "Price"}, 6, 2).size(),
      2u);
  EXPECT_TRUE(
      FindMinimalConnections(example.views, {"Song", "Price"}, 1, 64)
          .empty());
}

TEST(BuildQueryFromAttributesTest, UniversalRelationFrontDoor) {
  // The paper's Example 2.1 query, generated from attributes alone
  // (Section 2.2, generation option 2) and answered end to end.
  auto example = MakeExample21();
  auto query = BuildQueryFromAttributes(
      example.views, {{"Song", Value::String("t1")}}, {"Price"});
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query->Validate(example.catalog).ok());
  EXPECT_EQ(query->connections().size(), 4u);

  exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.Answer(*query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exec.answer.size(), 3u);  // {$15, $13, $10}
}

TEST(BuildQueryFromAttributesTest, FailsWhenUncoverable) {
  auto example = MakeExample21();
  EXPECT_FALSE(BuildQueryFromAttributes(example.views, {},
                                        {"Genre"})
                   .ok());
}

}  // namespace
}  // namespace limcap::planner
