file(REMOVE_RECURSE
  "CMakeFiles/limcap_capability.dir/access_log.cc.o"
  "CMakeFiles/limcap_capability.dir/access_log.cc.o.d"
  "CMakeFiles/limcap_capability.dir/binding_pattern.cc.o"
  "CMakeFiles/limcap_capability.dir/binding_pattern.cc.o.d"
  "CMakeFiles/limcap_capability.dir/caching_source.cc.o"
  "CMakeFiles/limcap_capability.dir/caching_source.cc.o.d"
  "CMakeFiles/limcap_capability.dir/catalog_text.cc.o"
  "CMakeFiles/limcap_capability.dir/catalog_text.cc.o.d"
  "CMakeFiles/limcap_capability.dir/in_memory_source.cc.o"
  "CMakeFiles/limcap_capability.dir/in_memory_source.cc.o.d"
  "CMakeFiles/limcap_capability.dir/renaming_source.cc.o"
  "CMakeFiles/limcap_capability.dir/renaming_source.cc.o.d"
  "CMakeFiles/limcap_capability.dir/source_catalog.cc.o"
  "CMakeFiles/limcap_capability.dir/source_catalog.cc.o.d"
  "CMakeFiles/limcap_capability.dir/source_view.cc.o"
  "CMakeFiles/limcap_capability.dir/source_view.cc.o.d"
  "liblimcap_capability.a"
  "liblimcap_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
