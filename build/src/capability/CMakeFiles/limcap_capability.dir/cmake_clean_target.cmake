file(REMOVE_RECURSE
  "liblimcap_capability.a"
)
