
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capability/access_log.cc" "src/capability/CMakeFiles/limcap_capability.dir/access_log.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/access_log.cc.o.d"
  "/root/repo/src/capability/binding_pattern.cc" "src/capability/CMakeFiles/limcap_capability.dir/binding_pattern.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/binding_pattern.cc.o.d"
  "/root/repo/src/capability/caching_source.cc" "src/capability/CMakeFiles/limcap_capability.dir/caching_source.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/caching_source.cc.o.d"
  "/root/repo/src/capability/catalog_text.cc" "src/capability/CMakeFiles/limcap_capability.dir/catalog_text.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/catalog_text.cc.o.d"
  "/root/repo/src/capability/in_memory_source.cc" "src/capability/CMakeFiles/limcap_capability.dir/in_memory_source.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/in_memory_source.cc.o.d"
  "/root/repo/src/capability/renaming_source.cc" "src/capability/CMakeFiles/limcap_capability.dir/renaming_source.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/renaming_source.cc.o.d"
  "/root/repo/src/capability/source_catalog.cc" "src/capability/CMakeFiles/limcap_capability.dir/source_catalog.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/source_catalog.cc.o.d"
  "/root/repo/src/capability/source_view.cc" "src/capability/CMakeFiles/limcap_capability.dir/source_view.cc.o" "gcc" "src/capability/CMakeFiles/limcap_capability.dir/source_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/limcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/limcap_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
