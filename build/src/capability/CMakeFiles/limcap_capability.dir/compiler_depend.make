# Empty compiler generated dependencies file for limcap_capability.
# This may be replaced when dependencies are built.
