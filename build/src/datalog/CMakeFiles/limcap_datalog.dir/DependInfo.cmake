
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cc" "src/datalog/CMakeFiles/limcap_datalog.dir/ast.cc.o" "gcc" "src/datalog/CMakeFiles/limcap_datalog.dir/ast.cc.o.d"
  "/root/repo/src/datalog/dependency_graph.cc" "src/datalog/CMakeFiles/limcap_datalog.dir/dependency_graph.cc.o" "gcc" "src/datalog/CMakeFiles/limcap_datalog.dir/dependency_graph.cc.o.d"
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/limcap_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/limcap_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/fact_store.cc" "src/datalog/CMakeFiles/limcap_datalog.dir/fact_store.cc.o" "gcc" "src/datalog/CMakeFiles/limcap_datalog.dir/fact_store.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/limcap_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/limcap_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/safety.cc" "src/datalog/CMakeFiles/limcap_datalog.dir/safety.cc.o" "gcc" "src/datalog/CMakeFiles/limcap_datalog.dir/safety.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/limcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/limcap_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
