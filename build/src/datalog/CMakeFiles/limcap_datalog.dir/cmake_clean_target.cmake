file(REMOVE_RECURSE
  "liblimcap_datalog.a"
)
