file(REMOVE_RECURSE
  "CMakeFiles/limcap_datalog.dir/ast.cc.o"
  "CMakeFiles/limcap_datalog.dir/ast.cc.o.d"
  "CMakeFiles/limcap_datalog.dir/dependency_graph.cc.o"
  "CMakeFiles/limcap_datalog.dir/dependency_graph.cc.o.d"
  "CMakeFiles/limcap_datalog.dir/evaluator.cc.o"
  "CMakeFiles/limcap_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/limcap_datalog.dir/fact_store.cc.o"
  "CMakeFiles/limcap_datalog.dir/fact_store.cc.o.d"
  "CMakeFiles/limcap_datalog.dir/parser.cc.o"
  "CMakeFiles/limcap_datalog.dir/parser.cc.o.d"
  "CMakeFiles/limcap_datalog.dir/safety.cc.o"
  "CMakeFiles/limcap_datalog.dir/safety.cc.o.d"
  "liblimcap_datalog.a"
  "liblimcap_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
