# Empty dependencies file for limcap_datalog.
# This may be replaced when dependencies are built.
