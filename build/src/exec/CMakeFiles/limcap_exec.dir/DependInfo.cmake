
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/baseline_executor.cc" "src/exec/CMakeFiles/limcap_exec.dir/baseline_executor.cc.o" "gcc" "src/exec/CMakeFiles/limcap_exec.dir/baseline_executor.cc.o.d"
  "/root/repo/src/exec/bind_join.cc" "src/exec/CMakeFiles/limcap_exec.dir/bind_join.cc.o" "gcc" "src/exec/CMakeFiles/limcap_exec.dir/bind_join.cc.o.d"
  "/root/repo/src/exec/latency_model.cc" "src/exec/CMakeFiles/limcap_exec.dir/latency_model.cc.o" "gcc" "src/exec/CMakeFiles/limcap_exec.dir/latency_model.cc.o.d"
  "/root/repo/src/exec/oracle.cc" "src/exec/CMakeFiles/limcap_exec.dir/oracle.cc.o" "gcc" "src/exec/CMakeFiles/limcap_exec.dir/oracle.cc.o.d"
  "/root/repo/src/exec/query_answerer.cc" "src/exec/CMakeFiles/limcap_exec.dir/query_answerer.cc.o" "gcc" "src/exec/CMakeFiles/limcap_exec.dir/query_answerer.cc.o.d"
  "/root/repo/src/exec/source_driven_evaluator.cc" "src/exec/CMakeFiles/limcap_exec.dir/source_driven_evaluator.cc.o" "gcc" "src/exec/CMakeFiles/limcap_exec.dir/source_driven_evaluator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/limcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/limcap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/limcap_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/capability/CMakeFiles/limcap_capability.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/limcap_planner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
