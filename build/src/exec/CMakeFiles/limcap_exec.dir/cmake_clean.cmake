file(REMOVE_RECURSE
  "CMakeFiles/limcap_exec.dir/baseline_executor.cc.o"
  "CMakeFiles/limcap_exec.dir/baseline_executor.cc.o.d"
  "CMakeFiles/limcap_exec.dir/bind_join.cc.o"
  "CMakeFiles/limcap_exec.dir/bind_join.cc.o.d"
  "CMakeFiles/limcap_exec.dir/latency_model.cc.o"
  "CMakeFiles/limcap_exec.dir/latency_model.cc.o.d"
  "CMakeFiles/limcap_exec.dir/oracle.cc.o"
  "CMakeFiles/limcap_exec.dir/oracle.cc.o.d"
  "CMakeFiles/limcap_exec.dir/query_answerer.cc.o"
  "CMakeFiles/limcap_exec.dir/query_answerer.cc.o.d"
  "CMakeFiles/limcap_exec.dir/source_driven_evaluator.cc.o"
  "CMakeFiles/limcap_exec.dir/source_driven_evaluator.cc.o.d"
  "liblimcap_exec.a"
  "liblimcap_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
