# Empty dependencies file for limcap_exec.
# This may be replaced when dependencies are built.
