file(REMOVE_RECURSE
  "liblimcap_exec.a"
)
