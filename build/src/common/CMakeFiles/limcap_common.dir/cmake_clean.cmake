file(REMOVE_RECURSE
  "CMakeFiles/limcap_common.dir/status.cc.o"
  "CMakeFiles/limcap_common.dir/status.cc.o.d"
  "CMakeFiles/limcap_common.dir/string_util.cc.o"
  "CMakeFiles/limcap_common.dir/string_util.cc.o.d"
  "CMakeFiles/limcap_common.dir/text_table.cc.o"
  "CMakeFiles/limcap_common.dir/text_table.cc.o.d"
  "CMakeFiles/limcap_common.dir/value.cc.o"
  "CMakeFiles/limcap_common.dir/value.cc.o.d"
  "CMakeFiles/limcap_common.dir/value_dictionary.cc.o"
  "CMakeFiles/limcap_common.dir/value_dictionary.cc.o.d"
  "liblimcap_common.a"
  "liblimcap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
