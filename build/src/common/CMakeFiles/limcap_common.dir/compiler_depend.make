# Empty compiler generated dependencies file for limcap_common.
# This may be replaced when dependencies are built.
