file(REMOVE_RECURSE
  "liblimcap_common.a"
)
