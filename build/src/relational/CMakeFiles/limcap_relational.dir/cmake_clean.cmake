file(REMOVE_RECURSE
  "CMakeFiles/limcap_relational.dir/operators.cc.o"
  "CMakeFiles/limcap_relational.dir/operators.cc.o.d"
  "CMakeFiles/limcap_relational.dir/relation.cc.o"
  "CMakeFiles/limcap_relational.dir/relation.cc.o.d"
  "CMakeFiles/limcap_relational.dir/schema.cc.o"
  "CMakeFiles/limcap_relational.dir/schema.cc.o.d"
  "liblimcap_relational.a"
  "liblimcap_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
