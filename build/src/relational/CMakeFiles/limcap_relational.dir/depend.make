# Empty dependencies file for limcap_relational.
# This may be replaced when dependencies are built.
