file(REMOVE_RECURSE
  "liblimcap_relational.a"
)
