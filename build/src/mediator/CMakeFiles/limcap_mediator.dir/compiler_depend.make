# Empty compiler generated dependencies file for limcap_mediator.
# This may be replaced when dependencies are built.
