file(REMOVE_RECURSE
  "CMakeFiles/limcap_mediator.dir/mediator.cc.o"
  "CMakeFiles/limcap_mediator.dir/mediator.cc.o.d"
  "liblimcap_mediator.a"
  "liblimcap_mediator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_mediator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
