file(REMOVE_RECURSE
  "liblimcap_mediator.a"
)
