# Empty compiler generated dependencies file for limcap_paperdata.
# This may be replaced when dependencies are built.
