file(REMOVE_RECURSE
  "CMakeFiles/limcap_paperdata.dir/paper_examples.cc.o"
  "CMakeFiles/limcap_paperdata.dir/paper_examples.cc.o.d"
  "liblimcap_paperdata.a"
  "liblimcap_paperdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_paperdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
