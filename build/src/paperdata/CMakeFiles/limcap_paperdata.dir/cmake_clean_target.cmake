file(REMOVE_RECURSE
  "liblimcap_paperdata.a"
)
