file(REMOVE_RECURSE
  "CMakeFiles/limcap_planner.dir/closure.cc.o"
  "CMakeFiles/limcap_planner.dir/closure.cc.o.d"
  "CMakeFiles/limcap_planner.dir/cost_model.cc.o"
  "CMakeFiles/limcap_planner.dir/cost_model.cc.o.d"
  "CMakeFiles/limcap_planner.dir/find_rel.cc.o"
  "CMakeFiles/limcap_planner.dir/find_rel.cc.o.d"
  "CMakeFiles/limcap_planner.dir/hypergraph.cc.o"
  "CMakeFiles/limcap_planner.dir/hypergraph.cc.o.d"
  "CMakeFiles/limcap_planner.dir/program_builder.cc.o"
  "CMakeFiles/limcap_planner.dir/program_builder.cc.o.d"
  "CMakeFiles/limcap_planner.dir/program_optimizer.cc.o"
  "CMakeFiles/limcap_planner.dir/program_optimizer.cc.o.d"
  "CMakeFiles/limcap_planner.dir/query.cc.o"
  "CMakeFiles/limcap_planner.dir/query.cc.o.d"
  "CMakeFiles/limcap_planner.dir/query_parser.cc.o"
  "CMakeFiles/limcap_planner.dir/query_parser.cc.o.d"
  "CMakeFiles/limcap_planner.dir/witness.cc.o"
  "CMakeFiles/limcap_planner.dir/witness.cc.o.d"
  "liblimcap_planner.a"
  "liblimcap_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
