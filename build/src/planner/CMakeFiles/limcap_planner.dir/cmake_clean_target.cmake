file(REMOVE_RECURSE
  "liblimcap_planner.a"
)
