# Empty dependencies file for limcap_planner.
# This may be replaced when dependencies are built.
