
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/closure.cc" "src/planner/CMakeFiles/limcap_planner.dir/closure.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/closure.cc.o.d"
  "/root/repo/src/planner/cost_model.cc" "src/planner/CMakeFiles/limcap_planner.dir/cost_model.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/cost_model.cc.o.d"
  "/root/repo/src/planner/find_rel.cc" "src/planner/CMakeFiles/limcap_planner.dir/find_rel.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/find_rel.cc.o.d"
  "/root/repo/src/planner/hypergraph.cc" "src/planner/CMakeFiles/limcap_planner.dir/hypergraph.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/hypergraph.cc.o.d"
  "/root/repo/src/planner/program_builder.cc" "src/planner/CMakeFiles/limcap_planner.dir/program_builder.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/program_builder.cc.o.d"
  "/root/repo/src/planner/program_optimizer.cc" "src/planner/CMakeFiles/limcap_planner.dir/program_optimizer.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/program_optimizer.cc.o.d"
  "/root/repo/src/planner/query.cc" "src/planner/CMakeFiles/limcap_planner.dir/query.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/query.cc.o.d"
  "/root/repo/src/planner/query_parser.cc" "src/planner/CMakeFiles/limcap_planner.dir/query_parser.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/query_parser.cc.o.d"
  "/root/repo/src/planner/witness.cc" "src/planner/CMakeFiles/limcap_planner.dir/witness.cc.o" "gcc" "src/planner/CMakeFiles/limcap_planner.dir/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/limcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/limcap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/limcap_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/capability/CMakeFiles/limcap_capability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
