# Empty dependencies file for limcap_workload.
# This may be replaced when dependencies are built.
