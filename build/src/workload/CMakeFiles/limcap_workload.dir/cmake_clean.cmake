file(REMOVE_RECURSE
  "CMakeFiles/limcap_workload.dir/generator.cc.o"
  "CMakeFiles/limcap_workload.dir/generator.cc.o.d"
  "liblimcap_workload.a"
  "liblimcap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
