file(REMOVE_RECURSE
  "liblimcap_workload.a"
)
