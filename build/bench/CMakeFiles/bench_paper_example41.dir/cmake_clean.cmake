file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_example41.dir/bench_paper_example41.cc.o"
  "CMakeFiles/bench_paper_example41.dir/bench_paper_example41.cc.o.d"
  "bench_paper_example41"
  "bench_paper_example41.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_example41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
