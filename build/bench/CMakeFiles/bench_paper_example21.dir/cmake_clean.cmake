file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_example21.dir/bench_paper_example21.cc.o"
  "CMakeFiles/bench_paper_example21.dir/bench_paper_example21.cc.o.d"
  "bench_paper_example21"
  "bench_paper_example21.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_example21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
