# Empty dependencies file for bench_paper_example52.
# This may be replaced when dependencies are built.
