file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_example52.dir/bench_paper_example52.cc.o"
  "CMakeFiles/bench_paper_example52.dir/bench_paper_example52.cc.o.d"
  "bench_paper_example52"
  "bench_paper_example52.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_example52.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
