# Empty compiler generated dependencies file for bench_exec_scaling.
# This may be replaced when dependencies are built.
