file(REMOVE_RECURSE
  "CMakeFiles/bench_exec_scaling.dir/bench_exec_scaling.cc.o"
  "CMakeFiles/bench_exec_scaling.dir/bench_exec_scaling.cc.o.d"
  "bench_exec_scaling"
  "bench_exec_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
