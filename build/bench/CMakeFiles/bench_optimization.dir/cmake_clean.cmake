file(REMOVE_RECURSE
  "CMakeFiles/bench_optimization.dir/bench_optimization.cc.o"
  "CMakeFiles/bench_optimization.dir/bench_optimization.cc.o.d"
  "bench_optimization"
  "bench_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
