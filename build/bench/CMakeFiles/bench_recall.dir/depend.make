# Empty dependencies file for bench_recall.
# This may be replaced when dependencies are built.
