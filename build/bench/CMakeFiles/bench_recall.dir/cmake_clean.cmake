file(REMOVE_RECURSE
  "CMakeFiles/bench_recall.dir/bench_recall.cc.o"
  "CMakeFiles/bench_recall.dir/bench_recall.cc.o.d"
  "bench_recall"
  "bench_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
