# Empty dependencies file for bench_partial_answer.
# This may be replaced when dependencies are built.
