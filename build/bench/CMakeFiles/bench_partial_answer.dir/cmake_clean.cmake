file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_answer.dir/bench_partial_answer.cc.o"
  "CMakeFiles/bench_partial_answer.dir/bench_partial_answer.cc.o.d"
  "bench_partial_answer"
  "bench_partial_answer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_answer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
