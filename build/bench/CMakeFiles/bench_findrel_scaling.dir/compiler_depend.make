# Empty compiler generated dependencies file for bench_findrel_scaling.
# This may be replaced when dependencies are built.
