file(REMOVE_RECURSE
  "CMakeFiles/bench_findrel_scaling.dir/bench_findrel_scaling.cc.o"
  "CMakeFiles/bench_findrel_scaling.dir/bench_findrel_scaling.cc.o.d"
  "bench_findrel_scaling"
  "bench_findrel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_findrel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
