file(REMOVE_RECURSE
  "CMakeFiles/limcap_shell.dir/limcap_shell.cpp.o"
  "CMakeFiles/limcap_shell.dir/limcap_shell.cpp.o.d"
  "limcap_shell"
  "limcap_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limcap_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
