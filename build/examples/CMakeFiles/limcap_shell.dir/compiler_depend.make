# Empty compiler generated dependencies file for limcap_shell.
# This may be replaced when dependencies are built.
