file(REMOVE_RECURSE
  "CMakeFiles/bookstore_sampling.dir/bookstore_sampling.cpp.o"
  "CMakeFiles/bookstore_sampling.dir/bookstore_sampling.cpp.o.d"
  "bookstore_sampling"
  "bookstore_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
