# Empty dependencies file for bookstore_sampling.
# This may be replaced when dependencies are built.
