# Empty dependencies file for mediated_integration.
# This may be replaced when dependencies are built.
