file(REMOVE_RECURSE
  "CMakeFiles/mediated_integration.dir/mediated_integration.cpp.o"
  "CMakeFiles/mediated_integration.dir/mediated_integration.cpp.o.d"
  "mediated_integration"
  "mediated_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediated_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
