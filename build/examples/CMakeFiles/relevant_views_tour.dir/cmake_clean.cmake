file(REMOVE_RECURSE
  "CMakeFiles/relevant_views_tour.dir/relevant_views_tour.cpp.o"
  "CMakeFiles/relevant_views_tour.dir/relevant_views_tour.cpp.o.d"
  "relevant_views_tour"
  "relevant_views_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relevant_views_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
