# Empty compiler generated dependencies file for relevant_views_tour.
# This may be replaced when dependencies are built.
