# Empty compiler generated dependencies file for partial_answers.
# This may be replaced when dependencies are built.
