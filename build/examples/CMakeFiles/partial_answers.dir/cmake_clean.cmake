file(REMOVE_RECURSE
  "CMakeFiles/partial_answers.dir/partial_answers.cpp.o"
  "CMakeFiles/partial_answers.dir/partial_answers.cpp.o.d"
  "partial_answers"
  "partial_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
