file(REMOVE_RECURSE
  "CMakeFiles/provenance_renaming_test.dir/provenance_renaming_test.cc.o"
  "CMakeFiles/provenance_renaming_test.dir/provenance_renaming_test.cc.o.d"
  "provenance_renaming_test"
  "provenance_renaming_test.pdb"
  "provenance_renaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_renaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
