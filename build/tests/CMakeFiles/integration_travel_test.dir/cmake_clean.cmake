file(REMOVE_RECURSE
  "CMakeFiles/integration_travel_test.dir/integration_travel_test.cc.o"
  "CMakeFiles/integration_travel_test.dir/integration_travel_test.cc.o.d"
  "integration_travel_test"
  "integration_travel_test.pdb"
  "integration_travel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_travel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
