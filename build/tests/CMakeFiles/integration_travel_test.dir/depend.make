# Empty dependencies file for integration_travel_test.
# This may be replaced when dependencies are built.
