file(REMOVE_RECURSE
  "CMakeFiles/datalog_ast_test.dir/datalog_ast_test.cc.o"
  "CMakeFiles/datalog_ast_test.dir/datalog_ast_test.cc.o.d"
  "datalog_ast_test"
  "datalog_ast_test.pdb"
  "datalog_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
