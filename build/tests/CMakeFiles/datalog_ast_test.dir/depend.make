# Empty dependencies file for datalog_ast_test.
# This may be replaced when dependencies are built.
