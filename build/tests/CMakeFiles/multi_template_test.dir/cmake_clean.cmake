file(REMOVE_RECURSE
  "CMakeFiles/multi_template_test.dir/multi_template_test.cc.o"
  "CMakeFiles/multi_template_test.dir/multi_template_test.cc.o.d"
  "multi_template_test"
  "multi_template_test.pdb"
  "multi_template_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_template_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
