file(REMOVE_RECURSE
  "CMakeFiles/datalog_roundtrip_test.dir/datalog_roundtrip_test.cc.o"
  "CMakeFiles/datalog_roundtrip_test.dir/datalog_roundtrip_test.cc.o.d"
  "datalog_roundtrip_test"
  "datalog_roundtrip_test.pdb"
  "datalog_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
