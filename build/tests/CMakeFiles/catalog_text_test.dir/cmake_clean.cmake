file(REMOVE_RECURSE
  "CMakeFiles/catalog_text_test.dir/catalog_text_test.cc.o"
  "CMakeFiles/catalog_text_test.dir/catalog_text_test.cc.o.d"
  "catalog_text_test"
  "catalog_text_test.pdb"
  "catalog_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
