# Empty compiler generated dependencies file for catalog_text_test.
# This may be replaced when dependencies are built.
