
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_parsers_test.cc" "tests/CMakeFiles/fuzz_parsers_test.dir/fuzz_parsers_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_parsers_test.dir/fuzz_parsers_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mediator/CMakeFiles/limcap_mediator.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/limcap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/limcap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/limcap_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/capability/CMakeFiles/limcap_capability.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/limcap_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/limcap_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/limcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/paperdata/CMakeFiles/limcap_paperdata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
