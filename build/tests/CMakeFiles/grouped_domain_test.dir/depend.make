# Empty dependencies file for grouped_domain_test.
# This may be replaced when dependencies are built.
