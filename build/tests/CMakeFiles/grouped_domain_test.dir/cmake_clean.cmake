file(REMOVE_RECURSE
  "CMakeFiles/grouped_domain_test.dir/grouped_domain_test.cc.o"
  "CMakeFiles/grouped_domain_test.dir/grouped_domain_test.cc.o.d"
  "grouped_domain_test"
  "grouped_domain_test.pdb"
  "grouped_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
