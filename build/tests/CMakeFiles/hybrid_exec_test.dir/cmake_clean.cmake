file(REMOVE_RECURSE
  "CMakeFiles/hybrid_exec_test.dir/hybrid_exec_test.cc.o"
  "CMakeFiles/hybrid_exec_test.dir/hybrid_exec_test.cc.o.d"
  "hybrid_exec_test"
  "hybrid_exec_test.pdb"
  "hybrid_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
