# Empty compiler generated dependencies file for hybrid_exec_test.
# This may be replaced when dependencies are built.
