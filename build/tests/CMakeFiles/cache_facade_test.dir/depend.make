# Empty dependencies file for cache_facade_test.
# This may be replaced when dependencies are built.
