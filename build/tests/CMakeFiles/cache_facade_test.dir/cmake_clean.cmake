file(REMOVE_RECURSE
  "CMakeFiles/cache_facade_test.dir/cache_facade_test.cc.o"
  "CMakeFiles/cache_facade_test.dir/cache_facade_test.cc.o.d"
  "cache_facade_test"
  "cache_facade_test.pdb"
  "cache_facade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
