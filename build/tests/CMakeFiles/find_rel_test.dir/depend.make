# Empty dependencies file for find_rel_test.
# This may be replaced when dependencies are built.
