file(REMOVE_RECURSE
  "CMakeFiles/find_rel_test.dir/find_rel_test.cc.o"
  "CMakeFiles/find_rel_test.dir/find_rel_test.cc.o.d"
  "find_rel_test"
  "find_rel_test.pdb"
  "find_rel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_rel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
